//! Comparator sorting networks (§5.2).
//!
//! Any comparator-based sorting network is an iterated composition of
//! butterfly building blocks (each comparator applies the transformation
//! `y0 = min(x0, x1)`, `y1 = max(x0, x1)` to its two wires), so it can
//! be computed IC-optimally: execute stage by stage, the two inputs of
//! each comparator in consecutive steps.
//!
//! We build two of Batcher's networks: the **bitonic** sorter (the
//! canonical construction by iterated composition; every stage touches
//! every wire) and the **odd-even merge** sorter (the "more efficient
//! known networks requiring a more complicated iterated composition of
//! comparators" \[11\]: fewer comparators, but some stages leave wires
//! untouched — those wires pass through).

use ic_dag::{Dag, DagBuilder, NodeId};
use ic_sched::Schedule;

/// One comparator: at stage `stage`, compares wires `lo < hi`; sorts
/// ascending (min on `lo`) when `ascending`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Comparator {
    /// Stage index (0-based).
    pub stage: usize,
    /// Lower wire index.
    pub lo: usize,
    /// Higher wire index.
    pub hi: usize,
    /// Direction: `true` puts the minimum on `lo`.
    pub ascending: bool,
}

/// The comparator stages of Batcher's bitonic sorter for `n = 2^k`
/// inputs: `k(k+1)/2` stages of `n/2` comparators each.
///
/// # Panics
/// Panics unless `n` is a power of two, `n >= 2`.
pub fn bitonic_comparators(n: usize) -> Vec<Vec<Comparator>> {
    assert!(
        n >= 2 && n.is_power_of_two(),
        "bitonic sort needs n = 2^k >= 2"
    );
    let k = n.trailing_zeros() as usize;
    let mut stages = Vec::with_capacity(k * (k + 1) / 2);
    let mut stage = 0usize;
    for p in 1..=k {
        for j in (0..p).rev() {
            let dist = 1usize << j;
            let mut comps = Vec::with_capacity(n / 2);
            for i in 0..n {
                let partner = i ^ dist;
                if partner > i {
                    let ascending = i & (1 << p) == 0;
                    comps.push(Comparator {
                        stage,
                        lo: i,
                        hi: partner,
                        ascending,
                    });
                }
            }
            stages.push(comps);
            stage += 1;
        }
    }
    stages
}

/// Node id of `(level, wire)` in [`bitonic_network`]: level-major, with
/// `level` ranging over `0..=stages`.
pub fn wire_id(n: usize, level: usize, wire: usize) -> NodeId {
    NodeId::new(level * n + wire)
}

/// The dag of an arbitrary comparator network on `n` wires: one node
/// per wire per stage boundary; each comparator contributes a butterfly
/// building block between consecutive levels; wires a stage does not
/// touch pass through with a single arc.
pub fn comparator_dag(n: usize, stages: &[Vec<Comparator>]) -> Dag {
    let levels = stages.len() + 1;
    let mut b = DagBuilder::with_capacity(levels * n);
    for l in 0..levels {
        for w in 0..n {
            b.add_node(format!("w{w}@{l}"));
        }
    }
    for (s, comps) in stages.iter().enumerate() {
        let mut touched = vec![false; n];
        for c in comps {
            debug_assert_eq!(c.stage, s, "comparator stage index mismatch");
            touched[c.lo] = true;
            touched[c.hi] = true;
            for &src in &[c.lo, c.hi] {
                for &dst in &[c.lo, c.hi] {
                    b.add_arc(wire_id(n, s, src), wire_id(n, s + 1, dst))
                        .expect("valid");
                }
            }
        }
        for (w, &t) in touched.iter().enumerate() {
            if !t {
                b.add_arc(wire_id(n, s, w), wire_id(n, s + 1, w))
                    .expect("valid");
            }
        }
    }
    b.build().expect("sorting networks are acyclic")
}

/// The §5.2 schedule for a comparator network: stage by stage, each
/// comparator's two sources consecutively, then the stage's untouched
/// (pass-through) wires; the final level in wire order.
pub fn comparator_schedule(n: usize, stages: &[Vec<Comparator>]) -> Schedule {
    let mut order = Vec::with_capacity((stages.len() + 1) * n);
    for (s, comps) in stages.iter().enumerate() {
        let mut touched = vec![false; n];
        for c in comps {
            touched[c.lo] = true;
            touched[c.hi] = true;
            order.push(wire_id(n, s, c.lo));
            order.push(wire_id(n, s, c.hi));
        }
        for (w, &t) in touched.iter().enumerate() {
            if !t {
                order.push(wire_id(n, s, w));
            }
        }
    }
    let last = stages.len();
    for w in 0..n {
        order.push(wire_id(n, last, w));
    }
    Schedule::new_unchecked(order)
}

/// The bitonic sorting network: dag plus comparator stages.
pub fn bitonic_network(n: usize) -> (Dag, Vec<Vec<Comparator>>) {
    let stages = bitonic_comparators(n);
    (comparator_dag(n, &stages), stages)
}

/// The §5.2 IC-optimal schedule for the bitonic network.
pub fn bitonic_schedule(n: usize, stages: &[Vec<Comparator>]) -> Schedule {
    comparator_schedule(n, stages)
}

/// The comparator stages of Batcher's odd-even mergesort for `n = 2^k`
/// inputs: the same `k(k+1)/2` stage count as bitonic but only
/// `Θ(n log² n)` comparators in total — stages thin out, leaving
/// pass-through wires.
///
/// # Panics
/// Panics unless `n` is a power of two, `n >= 2`.
pub fn odd_even_comparators(n: usize) -> Vec<Vec<Comparator>> {
    assert!(
        n >= 2 && n.is_power_of_two(),
        "odd-even mergesort needs n = 2^k >= 2"
    );
    let mut stages = Vec::new();
    let mut stage = 0usize;
    let mut p = 1usize;
    while p < n {
        let mut k = p;
        loop {
            let mut comps = Vec::new();
            let mut j = k % p;
            while j + k < n {
                for i in 0..k.min(n - j - k) {
                    let a = i + j;
                    let b = i + j + k;
                    if a / (2 * p) == b / (2 * p) {
                        comps.push(Comparator {
                            stage,
                            lo: a,
                            hi: b,
                            ascending: true,
                        });
                    }
                }
                j += 2 * k;
            }
            stages.push(comps);
            stage += 1;
            if k == 1 {
                break;
            }
            k /= 2;
        }
        p *= 2;
    }
    stages
}

/// The odd-even merge sorting network: dag plus comparator stages.
pub fn odd_even_network(n: usize) -> (Dag, Vec<Vec<Comparator>>) {
    let stages = odd_even_comparators(n);
    (comparator_dag(n, &stages), stages)
}

/// Registered paper claims for comparator sorting networks (\u{00a7}5.2):
/// the bitonic network schedules IC-optimally stage by stage, while the
/// odd-even merge network admits no IC-optimal schedule at width 4 \u{2014}
/// the paper's \u{201c}not every sorting network\u{201d} caveat, machine-checked.
pub fn claims() -> Vec<crate::claims::Claim> {
    use crate::claims::{Claim, Guarantee};
    let (bd, bstages) = bitonic_network(4);
    let bs = bitonic_schedule(4, &bstages);
    let (od, ostages) = odd_even_network(4);
    let os = comparator_schedule(4, &ostages);
    vec![
        Claim::new(
            "sorting/bitonic-4",
            "\u{00a7}5.2",
            "the stage-by-stage schedule of the width-4 bitonic network is IC-optimal",
            bd,
            bs,
            Guarantee::IcOptimal,
        ),
        Claim::new(
            "sorting/odd-even-4",
            "\u{00a7}5.2 (obstruction)",
            "the width-4 odd-even merge network admits no IC-optimal schedule",
            od,
            os,
            Guarantee::NoIcOptimal,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_sched::optimal::is_ic_optimal;

    #[test]
    fn stage_counts() {
        assert_eq!(bitonic_comparators(2).len(), 1);
        assert_eq!(bitonic_comparators(4).len(), 3);
        assert_eq!(bitonic_comparators(8).len(), 6);
        assert_eq!(bitonic_comparators(16).len(), 10);
        // Each stage has n/2 comparators.
        for comps in bitonic_comparators(8) {
            assert_eq!(comps.len(), 4);
        }
    }

    #[test]
    fn network_counts() {
        let (dag, stages) = bitonic_network(4);
        assert_eq!(stages.len(), 3);
        assert_eq!(dag.num_nodes(), 16);
        assert_eq!(dag.num_arcs(), 3 * 2 * 4); // 4 arcs per comparator
        assert_eq!(dag.num_sources(), 4);
        assert_eq!(dag.num_sinks(), 4);
    }

    #[test]
    fn schedule_is_valid() {
        for n in [2usize, 4, 8] {
            let (dag, stages) = bitonic_network(n);
            let s = bitonic_schedule(n, &stages);
            assert!(
                ic_dag::traversal::is_topological(&dag, s.order()),
                "n = {n}"
            );
        }
    }

    #[test]
    fn schedule_is_ic_optimal_for_n2() {
        let (dag, stages) = bitonic_network(2);
        assert!(is_ic_optimal(&dag, &bitonic_schedule(2, &stages)).unwrap());
    }

    #[test]
    fn schedule_is_ic_optimal_for_n4() {
        let (dag, stages) = bitonic_network(4);
        assert!(is_ic_optimal(&dag, &bitonic_schedule(4, &stages)).unwrap());
    }

    #[test]
    fn odd_even_n4_structure() {
        let stages = odd_even_comparators(4);
        assert_eq!(stages.len(), 3);
        let total: usize = stages.iter().map(Vec::len).sum();
        assert_eq!(total, 5); // vs bitonic's 6
                              // The classic shape: (0,1)(2,3) | (0,2)(1,3) | (1,2).
        assert_eq!(stages[2].len(), 1);
        assert_eq!((stages[2][0].lo, stages[2][0].hi), (1, 2));
    }

    #[test]
    fn odd_even_has_fewer_comparators_than_bitonic() {
        for n in [4usize, 8, 16, 32] {
            let oe: usize = odd_even_comparators(n).iter().map(Vec::len).sum();
            let bi: usize = bitonic_comparators(n).iter().map(Vec::len).sum();
            assert!(oe < bi, "n = {n}: odd-even {oe} vs bitonic {bi}");
        }
    }

    #[test]
    fn odd_even_network_is_well_formed() {
        for n in [2usize, 4, 8, 16] {
            let (dag, stages) = odd_even_network(n);
            assert_eq!(dag.num_nodes(), (stages.len() + 1) * n);
            assert_eq!(dag.num_sources(), n);
            assert_eq!(dag.num_sinks(), n);
            let s = comparator_schedule(n, &stages);
            assert!(
                ic_dag::traversal::is_topological(&dag, s.order()),
                "n = {n}"
            );
        }
    }

    #[test]
    fn odd_even_wires_touched_at_most_once_per_stage() {
        for n in [4usize, 8, 16] {
            for comps in odd_even_comparators(n) {
                let mut seen = vec![false; n];
                for c in comps {
                    assert!(c.lo < c.hi && c.hi < n);
                    assert!(!seen[c.lo] && !seen[c.hi]);
                    seen[c.lo] = true;
                    seen[c.hi] = true;
                }
            }
        }
    }

    #[test]
    fn odd_even_n4_admits_no_ic_optimal_schedule() {
        // REPRODUCTION NUANCE: §5.2's "any comparator-based sorting
        // algorithm can be computed IC optimally" concerns networks that
        // are pure iterated compositions of the block B — every wire in a
        // comparator at every stage, as in the bitonic network. The
        // odd-even merge network saves comparators by leaving wires
        // untouched (pass-throughs with ΔE = 0); the resulting dag mixes
        // step-qualities and — exhaustively checked at n = 4 (16 nodes) —
        // admits NO IC-optimal schedule, the same phenomenon as unary
        // nodes in out-trees. Its schedules still sort, of course.
        let (dag, _) = odd_even_network(4);
        assert!(!ic_sched::optimal::admits_ic_optimal(&dag).unwrap());
        // The bitonic network of the same width does admit one.
        let (bdag, bstages) = bitonic_network(4);
        assert!(
            ic_sched::optimal::is_ic_optimal(&bdag, &comparator_schedule(4, &bstages)).unwrap()
        );
    }

    #[test]
    fn comparators_cover_every_wire_once_per_stage() {
        for n in [4usize, 8, 16] {
            for comps in bitonic_comparators(n) {
                let mut seen = vec![false; n];
                for c in comps {
                    assert!(c.lo < c.hi);
                    assert!(!seen[c.lo] && !seen[c.hi], "wire reused in a stage");
                    seen[c.lo] = true;
                    seen[c.hi] = true;
                }
                assert!(seen.into_iter().all(|b| b), "stage must touch all wires");
            }
        }
    }
}
