//! Out-trees and in-trees (§3.1 of the paper).
//!
//! Every out-tree is an iterated composition of Vee dags, hence a
//! ▷-linear composition — and in fact *every* schedule for an out-tree
//! is IC-optimal. Every in-tree is dual to an out-tree; a schedule for
//! an in-tree is IC-optimal iff it executes the `d` sources of each
//! `Λ_d` copy in consecutive steps. We construct in-tree schedules by
//! the Theorem 2.2 dual-packet construction, which realizes exactly
//! that characterization.

use ic_dag::rng::XorShift64;
use ic_dag::{dual, Dag, DagBuilder, NodeId};
use ic_sched::duality::dual_schedule;
use ic_sched::{SchedError, Schedule};

/// A complete `arity`-ary out-tree of the given `depth` (`depth = 0` is
/// a single node). Nodes are numbered in BFS order: the root is `0`,
/// level `l` occupies a contiguous id range, and the leaves come last.
///
/// # Panics
/// Panics if `arity == 0`.
pub fn complete_out_tree(arity: usize, depth: usize) -> Dag {
    assert!(arity > 0, "arity must be positive");
    let mut count = 1usize;
    let mut level_size = 1usize;
    for _ in 0..depth {
        level_size *= arity;
        count += level_size;
    }
    let mut b = DagBuilder::with_capacity(count);
    b.add_nodes(count);
    // BFS numbering: children of node i are arity*i + 1 ..= arity*i + arity.
    for i in 0..count {
        for c in 1..=arity {
            let child = arity * i + c;
            if child < count {
                b.add_arc(NodeId::new(i), NodeId::new(child))
                    .expect("valid");
            }
        }
    }
    b.build().expect("trees are acyclic")
}

/// A complete `arity`-ary in-tree of the given `depth`: the dual of
/// [`complete_out_tree`] (same node ids; the root `0` becomes the sink).
pub fn complete_in_tree(arity: usize, depth: usize) -> Dag {
    dual(&complete_out_tree(arity, depth))
}

/// Build an out-tree from an explicit parent array: `parents[0]` must be
/// `None` (the root); `parents[i] = Some(j)` makes `j` (`j < i`) the
/// parent of `i`. This is how irregular trees — e.g. the adaptive
/// quadrature trees of §3.2 — are assembled.
pub fn out_tree_from_parents(parents: &[Option<usize>]) -> Result<Dag, SchedError> {
    let mut b = DagBuilder::with_capacity(parents.len());
    b.add_nodes(parents.len());
    for (i, p) in parents.iter().enumerate() {
        match p {
            None => {
                if i != 0 {
                    return Err(SchedError::InvalidSchedule);
                }
            }
            Some(j) => {
                if *j >= i {
                    return Err(SchedError::InvalidSchedule);
                }
                b.add_arc(NodeId::new(*j), NodeId::new(i))
                    .map_err(SchedError::Dag)?;
            }
        }
    }
    b.build().map_err(SchedError::Dag)
}

/// A uniformly random out-tree with `n` nodes and maximum out-degree
/// `max_arity`: each node `i > 0` attaches to a random earlier node with
/// remaining capacity. Deterministic in `seed`.
///
/// # Panics
/// Panics if `n == 0` or `max_arity == 0`.
pub fn random_out_tree(n: usize, max_arity: usize, seed: u64) -> Dag {
    assert!(n > 0 && max_arity > 0);
    let mut rng = XorShift64::new(seed);
    let mut degree = vec![0usize; n];
    let mut parents: Vec<Option<usize>> = vec![None; n];
    for (i, slot) in parents.iter_mut().enumerate().skip(1) {
        // Rejection-free: collect candidates with capacity.
        let candidates: Vec<usize> = (0..i).filter(|&j| degree[j] < max_arity).collect();
        let j = candidates[rng.gen_range(candidates.len())];
        *slot = Some(j);
        degree[j] += 1;
    }
    out_tree_from_parents(&parents).expect("parent array is valid by construction")
}

/// A random *uniform-arity* out-tree: every internal node has exactly
/// `arity` children — exactly the trees expressible as iterated
/// compositions of the degree-`arity` Vee dag, for which the §3.1
/// claims hold (each nonsink execution renders the same number of nodes
/// ELIGIBLE, so every nonsink order is IC-optimal). Grows by expanding a
/// random leaf until at least `target_nodes` nodes exist. Deterministic
/// in `seed`.
///
/// Trees with *unary* internal nodes can fail to admit IC-optimal
/// schedules at all, and trees of mixed arity admit them but not by
/// every order — see the tests for concrete counterexamples.
///
/// # Panics
/// Panics if `arity < 2`.
pub fn random_branching_out_tree(target_nodes: usize, arity: usize, seed: u64) -> Dag {
    assert!(arity >= 2, "branching trees need arity >= 2");
    let mut rng = XorShift64::new(seed);
    let mut parents: Vec<Option<usize>> = vec![None];
    let mut leaves: Vec<usize> = vec![0];
    while parents.len() < target_nodes {
        let li = rng.gen_range(leaves.len());
        let v = leaves.swap_remove(li);
        for _ in 0..arity {
            leaves.push(parents.len());
            parents.push(Some(v));
        }
    }
    out_tree_from_parents(&parents).expect("valid by construction")
}

/// Is `dag` a *branching* out-tree — an out-tree in which every internal
/// node has at least two children (an iterated Vee-composition)?
pub fn is_branching_out_tree(dag: &Dag) -> bool {
    is_out_tree(dag) && dag.node_ids().all(|v| dag.out_degree(v) != 1)
}

/// Is `dag` an out-tree? (Connected; exactly one source; every other
/// node has exactly one parent.)
pub fn is_out_tree(dag: &Dag) -> bool {
    if dag.num_nodes() == 0 {
        return false;
    }
    let roots = dag.num_sources();
    roots == 1
        && dag.node_ids().all(|v| dag.in_degree(v) <= 1)
        && ic_dag::traversal::is_weakly_connected(dag)
}

/// Is `dag` an in-tree? (The dual of an out-tree.)
pub fn is_in_tree(dag: &Dag) -> bool {
    is_out_tree(&dual(dag))
}

/// An IC-optimal schedule for an out-tree. *Every* schedule of an
/// out-tree is IC-optimal (§3.1), so id order serves.
pub fn out_tree_schedule(tree: &Dag) -> Schedule {
    Schedule::in_id_order(tree)
}

/// An IC-optimal schedule for an in-tree, via Theorem 2.2: take any
/// (IC-optimal) schedule of the dual out-tree and reverse its packets.
/// The result executes the sources of each `Λ_d` copy consecutively —
/// the §3.1 characterization of in-tree IC-optimality.
pub fn in_tree_schedule(tree: &Dag) -> Result<Schedule, SchedError> {
    let out = dual(tree); // an out-tree; ids shared
    let sigma = Schedule::in_id_order(&out);
    dual_schedule(&out, &sigma) // schedule for dual(out) == tree
}

/// Check the §3.1 characterization directly: does `schedule` execute,
/// for every internal node of the in-tree, all of that node's parents
/// in consecutive steps?
pub fn executes_siblings_consecutively(tree: &Dag, schedule: &Schedule) -> bool {
    let mut pos = vec![0usize; tree.num_nodes()];
    for (i, &v) in schedule.order().iter().enumerate() {
        pos[v.index()] = i;
    }
    tree.node_ids().all(|v| {
        let ps = tree.parents(v);
        if ps.len() < 2 {
            return true;
        }
        let mut positions: Vec<usize> = ps.iter().map(|p| pos[p.index()]).collect();
        positions.sort_unstable();
        positions.windows(2).all(|w| w[1] == w[0] + 1)
    })
}

/// Registered paper claims for trees (\u{00a7}3.1): out-trees are scheduled
/// IC-optimally by any order; in-trees by the Theorem 2.2 dual-packet
/// construction.
pub fn claims() -> Vec<crate::claims::Claim> {
    use crate::claims::{Claim, Guarantee};
    let t = complete_out_tree(2, 3);
    let st = out_tree_schedule(&t);
    let it = complete_in_tree(2, 3);
    let sit = in_tree_schedule(&it).expect("in-tree schedule exists");
    vec![
        Claim::new(
            "trees/out-tree-2-3",
            "\u{00a7}3.1",
            "every schedule of a branching out-tree is IC-optimal (id order shown)",
            t,
            st,
            Guarantee::IcOptimal,
        )
        .with_duality(),
        Claim::new(
            "trees/in-tree-2-3",
            "\u{00a7}3.1 + Thm 2.2",
            "the dual-packet schedule executes sibling groups consecutively, hence IC-optimally",
            it,
            sit,
            Guarantee::IcOptimal,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_sched::optimal::{every_nonsink_order_ic_optimal, is_ic_optimal};

    #[test]
    fn complete_tree_counts() {
        let t = complete_out_tree(2, 3);
        assert_eq!(t.num_nodes(), 15);
        assert_eq!(t.num_sinks(), 8);
        assert!(is_out_tree(&t));
        let t3 = complete_out_tree(3, 2);
        assert_eq!(t3.num_nodes(), 13);
        assert_eq!(t3.num_sinks(), 9);
    }

    #[test]
    fn depth_zero_tree_is_single_node() {
        let t = complete_out_tree(2, 0);
        assert_eq!(t.num_nodes(), 1);
        assert!(is_out_tree(&t));
    }

    #[test]
    fn every_nonsink_order_of_branching_out_trees_is_ic_optimal() {
        // §3.1: "easily, every schedule for an out-tree is IC optimal!"
        // (Every *nonsink order*, for trees built from Vee compositions.)
        for (a, d) in [(2, 1), (2, 2), (2, 3), (3, 1), (3, 2)] {
            let t = complete_out_tree(a, d);
            assert!(
                every_nonsink_order_ic_optimal(&t).unwrap(),
                "arity {a} depth {d}"
            );
        }
        for seed in 0..5 {
            let t = random_branching_out_tree(10, 3, seed);
            assert!(every_nonsink_order_ic_optimal(&t).unwrap(), "seed {seed}");
        }
    }

    #[test]
    fn mixed_arity_trees_admit_but_not_every_order() {
        // root has a 3-child and a 2-child internal node below it:
        // IC-optimal schedules exist (execute the wider Vee first — V_a ▷
        // V_b iff a >= b) but not every nonsink order achieves the
        // envelope.
        let mut parents = vec![None, Some(0), Some(0)];
        parents.extend([Some(1), Some(1), Some(1)]); // node 1: 3 children
        parents.extend([Some(2), Some(2)]); // node 2: 2 children
        let t = out_tree_from_parents(&parents).unwrap();
        assert!(is_branching_out_tree(&t));
        assert!(ic_sched::optimal::admits_ic_optimal(&t).unwrap());
        assert!(!every_nonsink_order_ic_optimal(&t).unwrap());
    }

    #[test]
    fn unary_out_trees_can_fail_to_admit_ic_optimal_schedules() {
        // Reproduction note: a tree with a unary chain hiding a wide
        // branch admits no IC-optimal schedule — the §3.1 claim is about
        // branching (Vee-composed) trees. root -> u -> v(5 kids), root -> w(2 kids).
        let mut parents = vec![None, Some(0), Some(1), Some(0)];
        for _ in 0..5 {
            parents.push(Some(2)); // v's children
        }
        for _ in 0..2 {
            parents.push(Some(3)); // w's children
        }
        let t = out_tree_from_parents(&parents).unwrap();
        assert!(is_out_tree(&t));
        assert!(!is_branching_out_tree(&t));
        assert!(!ic_sched::optimal::admits_ic_optimal(&t).unwrap());
    }

    #[test]
    fn in_tree_dual_schedule_is_ic_optimal() {
        for (a, d) in [(2, 2), (2, 3), (3, 2)] {
            let t = complete_in_tree(a, d);
            let s = in_tree_schedule(&t).unwrap();
            assert!(is_ic_optimal(&t, &s).unwrap(), "arity {a} depth {d}");
            assert!(executes_siblings_consecutively(&t, &s));
        }
    }

    #[test]
    fn in_tree_characterization_iff() {
        // On a small in-tree, a schedule is IC-optimal iff it executes
        // sibling leaf-groups consecutively — check both directions by
        // probing several schedules.
        let t = complete_in_tree(2, 2); // 7 nodes, sinks last... ids: root 0 is sink
        use ic_sched::heuristics::{schedule_with, Policy};
        for p in Policy::all(3) {
            let s = schedule_with(&t, &p);
            let optimal = is_ic_optimal(&t, &s).unwrap();
            let consecutive = executes_siblings_consecutively(&t, &s);
            assert_eq!(
                optimal,
                consecutive,
                "characterization mismatch for {}",
                p.name()
            );
        }
    }

    #[test]
    fn random_trees_respect_arity() {
        for seed in 0..10 {
            let t = random_out_tree(30, 2, seed);
            assert!(is_out_tree(&t));
            assert!(t.node_ids().all(|v| t.out_degree(v) <= 2));
        }
    }

    #[test]
    fn random_tree_is_reproducible() {
        let a = random_out_tree(20, 3, 99);
        let b = random_out_tree(20, 3, 99);
        assert_eq!(a, b);
    }

    #[test]
    fn parent_array_validation() {
        assert!(out_tree_from_parents(&[None, Some(0), Some(0)]).is_ok());
        // Root must be index 0.
        assert!(out_tree_from_parents(&[Some(1), None]).is_err());
        // Forward parent reference rejected.
        assert!(out_tree_from_parents(&[None, Some(2), Some(0)]).is_err());
    }

    #[test]
    fn tree_predicates() {
        let t = complete_out_tree(2, 2);
        assert!(is_out_tree(&t));
        assert!(!is_in_tree(&t));
        let it = complete_in_tree(2, 2);
        assert!(is_in_tree(&it));
        assert!(!is_out_tree(&it));
        // A diamond is neither.
        let d = ic_dag::builder::from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        assert!(!is_out_tree(&d));
        assert!(!is_in_tree(&d));
    }
}
