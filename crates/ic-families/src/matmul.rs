//! The matrix-multiplication dag `M` (§7, Fig. 17).
//!
//! Multiplying 2×2 (block) matrices
//! `(A B; C D) × (E F; G H) = (AE+BG  AF+BH; CE+DG  CF+DH)`
//! yields a dag with 8 input tasks, 8 product tasks, and 4 sum tasks.
//! The products `{AE, CE, CF, AF}` with their operands `{A, E, C, F}`
//! form a bipartite cycle-dag `C₄` (each operand feeds the two products
//! adjacent to it around the cycle `A–E–C–F`), and likewise
//! `{BG, DG, DH, BH}` with `{B, G, D, H}`; the four sums are `Λ`s. So
//! `M` is composite of type `C₄ ⇑ C₄ ⇑ Λ ⇑ Λ ⇑ Λ ⇑ Λ`, and
//! `C₄ ▷ C₄ ▷ Λ ▷ Λ` makes it ▷-linear (Theorem 2.1).
//!
//! Because (7.1) never invokes commutativity, the same dag drives the
//! recursive block algorithm for `n × n` matrices;
//! [`recursive_matmul`] expands each product into a sub-`M` to any
//! depth, the paper's granularity-refinement knob.

use ic_dag::{Dag, DagBuilder, NodeId};
use ic_sched::Schedule;

/// Node ids of [`matmul_dag`], in construction order.
pub mod nodes {
    /// The eight input (block) operands, cycle-1 then cycle-2 order.
    pub const INPUTS: [&str; 8] = ["A", "E", "C", "F", "B", "G", "D", "H"];
    /// The eight products, cycle-1 then cycle-2 order.
    pub const PRODUCTS: [&str; 8] = ["AE", "CE", "CF", "AF", "BG", "DG", "DH", "BH"];
    /// The four sums (result blocks), row-major.
    pub const SUMS: [&str; 4] = ["AE+BG", "AF+BH", "CE+DG", "CF+DH"];
}

/// The 20-node dag `M` of Fig. 17. Ids: inputs `0..8`
/// (`A,E,C,F,B,G,D,H`), products `8..16`
/// (`AE,CE,CF,AF,BG,DG,DH,BH`), sums `16..20`.
pub fn matmul_dag() -> Dag {
    let mut b = DagBuilder::with_capacity(20);
    let inputs: Vec<NodeId> = nodes::INPUTS.iter().map(|l| b.add_node(*l)).collect();
    let products: Vec<NodeId> = nodes::PRODUCTS.iter().map(|l| b.add_node(*l)).collect();
    let sums: Vec<NodeId> = nodes::SUMS.iter().map(|l| b.add_node(*l)).collect();
    let (a, e, c, f, bb, g, d, h) = (
        inputs[0], inputs[1], inputs[2], inputs[3], inputs[4], inputs[5], inputs[6], inputs[7],
    );
    // Cycle 1: AE <- {A,E}, CE <- {E,C}, CF <- {C,F}, AF <- {F,A}.
    for (p, (x, y)) in products[..4].iter().zip([(a, e), (e, c), (c, f), (f, a)]) {
        b.add_arc(x, *p).expect("valid");
        b.add_arc(y, *p).expect("valid");
    }
    // Cycle 2: BG <- {B,G}, DG <- {G,D}, DH <- {D,H}, BH <- {H,B}.
    for (p, (x, y)) in products[4..].iter().zip([(bb, g), (g, d), (d, h), (h, bb)]) {
        b.add_arc(x, *p).expect("valid");
        b.add_arc(y, *p).expect("valid");
    }
    // Sums: AE+BG, AF+BH, CE+DG, CF+DH.
    for (s, (p, q)) in sums.iter().zip([(0usize, 4), (3, 7), (1, 5), (2, 6)]) {
        b.add_arc(products[p], *s).expect("valid");
        b.add_arc(products[q], *s).expect("valid");
    }
    b.build().expect("M is acyclic")
}

/// The product order the paper states in §7.2: `AE, CE, CF, AF, BG, DG,
/// DH, BH` — cycle 1's products, then cycle 2's — preceded by the
/// operands in cyclic order and followed by the sums.
pub fn paper_schedule() -> Schedule {
    let mut order: Vec<NodeId> = (0..20).map(NodeId::new).collect();
    let _ = &mut order; // ids are already in the paper's order
    Schedule::new_unchecked(order)
}

/// The Theorem 2.1 order for the `C₄ ⇑ C₄ ⇑ Λ⁴` decomposition: operands
/// in cyclic order (both cycles), then each `Λ`'s two product sources
/// consecutively (`AE, BG, AF, BH, CE, DG, CF, DH`), then the sums.
pub fn theorem_schedule() -> Schedule {
    let mut order: Vec<NodeId> = (0..8).map(NodeId::new).collect();
    // Products by Λ: (AE=8, BG=12), (AF=11, BH=15), (CE=9, DG=13), (CF=10, DH=14).
    for &p in &[8u32, 12, 11, 15, 9, 13, 10, 14] {
        order.push(NodeId(p));
    }
    order.extend((16..20).map(NodeId::new));
    Schedule::new_unchecked(order)
}

/// Recursively refined block-multiplication dag: at `depth = 0` each
/// product is a single task ([`matmul_dag`] shape); at depth `k > 0`,
/// each product `X·Y` becomes: 8 *split* tasks (the four sub-blocks of
/// each operand), a recursive sub-multiplication dag, and a *combine*
/// task gathering the four sub-results.
pub fn recursive_matmul(depth: usize) -> Dag {
    let mut b = DagBuilder::new();
    let inputs: Vec<NodeId> = nodes::INPUTS.iter().map(|l| b.add_node(*l)).collect();
    let outs = build_level(&mut b, &inputs, depth, "");
    let _ = outs;
    b.build().expect("recursive M is acyclic")
}

/// Number of nodes of [`recursive_matmul`] at the given depth:
/// `f(0) = 20`; each deeper level replaces 8 product nodes with
/// `8 + (f(d-1) - 8) + 1` nodes each (splits + sub-dag minus its reused
/// inputs + combine).
pub fn recursive_matmul_nodes(depth: usize) -> usize {
    // Inner multiplication cost: nodes added by one product expansion.
    fn product_cost(depth: usize) -> usize {
        if depth == 0 {
            1
        } else {
            // 8 splits + recursive inner structure + 1 combine:
            // inner = 8 products' costs + 4 sums, fed by the splits.
            8 + 8 * product_cost(depth - 1) + 4 + 1
        }
    }
    8 + 8 * product_cost(depth) + 4
}

fn build_level(b: &mut DagBuilder, inputs: &[NodeId], depth: usize, tag: &str) -> [NodeId; 4] {
    let (a, e, c, f, bb, g, d, h) = (
        inputs[0], inputs[1], inputs[2], inputs[3], inputs[4], inputs[5], inputs[6], inputs[7],
    );
    let pairs = [
        (a, e, "AE"),
        (e, c, "CE"),
        (c, f, "CF"),
        (f, a, "AF"),
        (bb, g, "BG"),
        (g, d, "DG"),
        (d, h, "DH"),
        (h, bb, "BH"),
    ];
    let mut products = Vec::with_capacity(8);
    for (x, y, name) in pairs {
        products.push(build_product(b, x, y, depth, &format!("{tag}{name}")));
    }
    let sums = [
        ("AE+BG", 0usize, 4),
        ("AF+BH", 3, 7),
        ("CE+DG", 1, 5),
        ("CF+DH", 2, 6),
    ];
    let mut out = [NodeId(0); 4];
    for (i, (name, p, q)) in sums.into_iter().enumerate() {
        let s = b.add_node(format!("{tag}{name}"));
        b.add_arc(products[p], s).expect("valid");
        b.add_arc(products[q], s).expect("valid");
        out[i] = s;
    }
    out
}

fn build_product(b: &mut DagBuilder, x: NodeId, y: NodeId, depth: usize, tag: &str) -> NodeId {
    if depth == 0 {
        let p = b.add_node(tag.to_string());
        b.add_arc(x, p).expect("valid");
        b.add_arc(y, p).expect("valid");
        return p;
    }
    // Split each operand into its four blocks.
    let mut sub_inputs = [NodeId(0); 8];
    // Sub-problem operands A,E,C,F,B,G,D,H = (X11,Y11,X21,Y12, X12,Y21,X22,Y22).
    let split_specs = [
        (x, "11"),
        (y, "11"),
        (x, "21"),
        (y, "12"),
        (x, "12"),
        (y, "21"),
        (x, "22"),
        (y, "22"),
    ];
    for (i, (src, blk)) in split_specs.into_iter().enumerate() {
        let s = b.add_node(format!("{tag}/split{blk}"));
        b.add_arc(src, s).expect("valid");
        sub_inputs[i] = s;
    }
    let sub_sums = build_level(b, &sub_inputs, depth - 1, &format!("{tag}/"));
    let combine = b.add_node(format!("{tag}/combine"));
    for s in sub_sums {
        b.add_arc(s, combine).expect("valid");
    }
    combine
}

/// Registered paper claims for the matrix-multiplication dag (Fig. 17,
/// \u{00a7}7): the Theorem 2.1 order over C\u{2084} \u{21d1} C\u{2084} \u{21d1} \u{039b}\u{2074} is IC-optimal;
/// the paper's own \u{00a7}7.2 product order is kept as a structural claim
/// (its profile is dominated \u{2014} see EXPERIMENTS.md, F17).
pub fn claims() -> Vec<crate::claims::Claim> {
    use crate::claims::{Claim, Guarantee};
    use crate::primitives::{cycle_dag, ic_schedule, lambda};
    let c4_chain: Vec<(Dag, Schedule)> = vec![cycle_dag(4), cycle_dag(4), lambda(), lambda()]
        .into_iter()
        .map(|g| {
            let s = ic_schedule(&g);
            (g, s)
        })
        .collect();
    vec![
        Claim::new(
            "matmul/theorem-order",
            "Fig. 17, \u{00a7}7",
            "the Theorem 2.1 order for C\u{2084} \u{21d1} C\u{2084} \u{21d1} \u{039b}\u{2074} is IC-optimal; C\u{2084} \u{25b7} C\u{2084} \u{25b7} \u{039b}",
            matmul_dag(),
            theorem_schedule(),
            Guarantee::IcOptimal,
        )
        .with_priority_chain(c4_chain),
        Claim::new(
            "matmul/paper-order",
            "\u{00a7}7.2",
            "the paper's product order is a valid execution order (dominated profile; reproduction note)",
            matmul_dag(),
            paper_schedule(),
            Guarantee::ValidOrder,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitives::{cycle_dag, ic_schedule, lambda};
    use ic_sched::optimal::{is_ic_optimal, optimal_envelope};
    use ic_sched::priority::has_priority;

    #[test]
    fn m_dag_counts() {
        let m = matmul_dag();
        assert_eq!(m.num_nodes(), 20);
        assert_eq!(m.num_arcs(), 16 + 8);
        assert_eq!(m.num_sources(), 8);
        assert_eq!(m.num_sinks(), 4);
        // Every product has 2 parents and 1 child; every input 2 children.
        for i in 0..8 {
            assert_eq!(m.out_degree(NodeId(i)), 2, "input {i}");
        }
        for i in 8..16 {
            assert_eq!(m.in_degree(NodeId(i)), 2, "product {i}");
            assert_eq!(m.out_degree(NodeId(i)), 1, "product {i}");
        }
    }

    #[test]
    fn section_7_priority_chain() {
        // C₄ ▷ C₄ ▷ Λ ▷ Λ.
        let c4 = cycle_dag(4);
        let l = lambda();
        let (sc, sl) = (ic_schedule(&c4), ic_schedule(&l));
        assert!(has_priority(&c4, &sc, &c4, &sc));
        assert!(has_priority(&c4, &sc, &l, &sl));
        assert!(has_priority(&l, &sl, &l, &sl));
    }

    #[test]
    fn theorem_schedule_is_ic_optimal() {
        let m = matmul_dag();
        let s = theorem_schedule();
        assert!(ic_dag::traversal::is_topological(&m, s.order()));
        assert!(is_ic_optimal(&m, &s).unwrap());
    }

    #[test]
    fn paper_schedule_is_valid_and_compare_profiles() {
        // REPRODUCTION NOTE: the paper's §7.2 product order (AE, CE, CF,
        // AF, BG, DG, DH, BH) delays the sums: no Λ completes until the
        // second cycle's products start. Under the pointwise definition
        // of IC-optimality its profile is dominated by the Theorem 2.1
        // (Λ-paired) order at steps 10-15 — see EXPERIMENTS.md (F17).
        let m = matmul_dag();
        let paper = paper_schedule();
        assert!(ic_dag::traversal::is_topological(&m, paper.order()));
        let envelope = optimal_envelope(&m).unwrap();
        let p_paper = paper.profile(&m);
        let p_theorem = theorem_schedule().profile(&m);
        assert_eq!(p_theorem, envelope, "Theorem order attains the envelope");
        assert!(
            ic_sched::quality::dominates(&p_theorem, &p_paper),
            "theorem order must dominate the paper's literal order"
        );
        assert_ne!(
            p_paper, envelope,
            "paper's literal product order is suboptimal"
        );
    }

    #[test]
    fn recursive_depth0_matches_m() {
        let r = recursive_matmul(0);
        let m = matmul_dag();
        assert_eq!(r.num_nodes(), m.num_nodes());
        assert_eq!(r.num_arcs(), m.num_arcs());
        assert_eq!(recursive_matmul_nodes(0), 20);
    }

    #[test]
    fn recursive_depth1_counts() {
        let r = recursive_matmul(1);
        assert_eq!(r.num_nodes(), recursive_matmul_nodes(1));
        // 8 + 8 * (8 + 8 + 4 + 1) + 4 = 180.
        assert_eq!(r.num_nodes(), 180);
        assert_eq!(r.num_sources(), 8);
        assert_eq!(r.num_sinks(), 4);
    }

    #[test]
    fn recursive_depth2_is_well_formed() {
        let r = recursive_matmul(2);
        assert_eq!(r.num_nodes(), recursive_matmul_nodes(2));
        assert_eq!(r.num_sources(), 8);
        assert_eq!(r.num_sinks(), 4);
        // Heuristics can schedule it.
        use ic_sched::heuristics::{schedule_with, Policy};
        let s = schedule_with(&r, &Policy::Fifo);
        assert_eq!(s.len(), r.num_nodes());
    }
}
