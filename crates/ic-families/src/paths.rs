//! The graph-paths computation of §6.2.2 (Fig. 16).
//!
//! Given an `m`-node graph with boolean adjacency matrix `A`, the
//! computation finds, for every node pair and every path length
//! `k ∈ [1, K]`, whether a length-`k` path exists:
//!
//! 1. a `K`-input parallel-prefix dag over *logical matrix
//!    multiplication* computes all powers `A¹ ... A^K`;
//! 2. an in-tree accumulates the `K` power matrices into the matrix `M`
//!    of path-length vectors.
//!
//! Structurally this is exactly the DLT dag `L_K` with coarse
//! (matrix-valued) tasks — the paper's showcase of the parallel-prefix
//! operator's multi-granularity. The task semantics (boolean matrix
//! products) live in `ic-apps::graphpaths`.

use crate::dlt::{dlt_prefix, DltDag};

/// The Fig. 16 dag for accumulating `powers` logical powers of an
/// adjacency matrix (`powers` a power of two; the paper uses 8).
/// Node-for-node the dag is `L_powers`; tasks are matrix-granular.
pub fn graph_paths_dag(powers: usize) -> DltDag {
    dlt_prefix(powers)
}

/// Registered paper claim for the graph-paths computation (Fig. 16,
/// \u{00a7}6.2.2): node-for-node the DLT dag with matrix-granular tasks.
pub fn claims() -> Vec<crate::claims::Claim> {
    use crate::claims::{Claim, Guarantee};
    let g = graph_paths_dag(4);
    let s = g.ic_schedule().expect("graph-paths schedule exists");
    vec![Claim::new(
        "paths/fig16-4",
        "Fig. 16, \u{00a7}6.2.2",
        "the L_4-shaped graph-paths dag is IC-optimal under the prefix schedule",
        g.dag,
        s,
        Guarantee::IcOptimal,
    )]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_sched::optimal::is_ic_optimal;

    #[test]
    fn fig16_dag_for_eight_powers() {
        let g = graph_paths_dag(8);
        assert_eq!(g.n, 8);
        assert_eq!(g.dag.num_sources(), 8);
        assert_eq!(g.dag.num_sinks(), 1);
        let s = g.ic_schedule().unwrap();
        assert!(ic_dag::traversal::is_topological(&g.dag, s.order()));
    }

    #[test]
    fn small_instance_is_ic_optimal() {
        let g = graph_paths_dag(4);
        let s = g.ic_schedule().unwrap();
        assert!(is_ic_optimal(&g.dag, &s).unwrap());
    }
}
