//! # `ic-families` — the dag families of the paper
//!
//! One module per family of *Applying IC-Scheduling Theory to Familiar
//! Classes of Computations*, each providing constructors, the paper's
//! closed-form IC-optimal schedules, decompositions into building
//! blocks, and multi-granularity (coarsening) transforms:
//!
//! | module | paper artifact |
//! |---|---|
//! | [`primitives`] | Fig 1 (V, Λ), Fig 8 (butterfly block B), Fig 12 (N-dags), Fig 6 (W-, M-dags), §7.2 (cycle-dags C_s), Fig 14 (V₃) |
//! | [`trees`] | out-trees and in-trees (§3.1) |
//! | [`diamond`] | Figs 2–4, Table 1 (expansion–reduction computations) |
//! | [`mesh`] | Figs 5–7 (wavefront computations, §4) |
//! | [`butterfly`] | Figs 9–10 (butterfly networks, §5) |
//! | [`sorting`] | §5.2 (comparator sorting networks) |
//! | [`prefix`] | Figs 11–12 (parallel-prefix dags, §6.1) |
//! | [`dlt`] | Figs 13, 15 (Discrete Laplace Transform dags, §6.2.1) |
//! | [`paths`] | Fig 16 (graph-paths computation, §6.2.2) |
//! | [`matmul`] | Fig 17 (matrix-multiplication dag, §7) |
//! | [`claims`] | the machine-checkable registry of all the above claims |
//! | [`symbolic`] | closed-form optimal-envelope certificates for large family instances |
//!
//! All constructors produce dags whose node ids follow the canonical
//! layout documented per module; schedules are returned as
//! [`ic_sched::Schedule`] values validated against the dag.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod butterfly;
pub mod claims;
pub mod diamond;
pub mod dlt;
pub mod matmul;
pub mod mesh;
pub mod paths;
pub mod prefix;
pub mod primitives;
pub mod sorting;
pub mod symbolic;
pub mod trees;
