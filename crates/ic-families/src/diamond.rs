//! Alternating expansion–reduction computations (§3, Figs. 2–4, Table 1).
//!
//! A *diamond dag* composes an out-tree `T` (the "expansive" phase, e.g.
//! the divide phase of divide-and-conquer) with an in-tree `T'` (the
//! "reductive" recombination phase) by merging `T`'s leaves with `T'`'s
//! sources. More generally, arbitrary alternations of out- and in-trees
//! (Fig. 4) of the composition types in Table 1 all admit IC-optimal
//! schedules:
//!
//! 1. `D_0 ⇑ D_1 ⇑ ... ⇑ D_n`  (chains of diamonds),
//! 2. `T^(in) ⇑ D_1 ⇑ ... ⇑ D_n`  (in-tree-led),
//! 3. `D_1 ⇑ ... ⇑ D_n ⇑ T^(out)`  (out-tree-tailed),
//!
//! where the out→in boundary merges all leaves with all in-tree sources,
//! and the in→out boundary merges the single sink with the single root.
//!
//! Coarsening (Fig. 3): truncating a branch of the out-tree together with
//! its mated portion of the in-tree collapses a mirrored subtree pair
//! into one coarse task.

use ic_dag::{compose_full, dual, quotient, ChainBuilder, Dag, NodeId, Quotient};
use ic_sched::compose_schedule::{linear_composition_schedule, Stage};
use ic_sched::{SchedError, Schedule};

use crate::trees::{in_tree_schedule, is_in_tree, is_out_tree, out_tree_schedule};

/// A diamond dag with its provenance: the generating out-tree and the
/// maps from tree nodes into the composite for both the expansive copy
/// and the reductive (dual) copy. Leaf `v` of the tree appears *once* in
/// the diamond — `out_map[v] == in_map[v]` for leaves.
#[derive(Debug, Clone)]
pub struct Diamond {
    /// The composite diamond dag.
    pub dag: Dag,
    /// The generating out-tree `T`.
    pub tree: Dag,
    /// Map from `T`'s nodes to diamond nodes (expansive copy).
    pub out_map: Vec<NodeId>,
    /// Map from `T̃`'s nodes (same ids as `T`) to diamond nodes
    /// (reductive copy).
    pub in_map: Vec<NodeId>,
}

/// Build the diamond `T ⇑ T̃` of Fig. 2/3: the out-tree composed with its
/// own dual, merging each leaf with its mirror.
pub fn diamond_from_out_tree(tree: &Dag) -> Result<Diamond, SchedError> {
    let tin = dual(tree);
    // T's sinks and T̃'s sources are the same id set, so compose_full's
    // id-order pairing merges each leaf with its own mirror.
    let c = compose_full(tree, &tin)?;
    Ok(Diamond {
        dag: c.dag,
        tree: tree.clone(),
        out_map: c.left_map,
        in_map: c.right_map,
    })
}

impl Diamond {
    /// The IC-optimal schedule of §3.1: execute all of `T` by an
    /// IC-optimal schedule, then all of `T̃` by an IC-optimal schedule
    /// (Theorem 2.1 over the ▷-linear `V ... V Λ ... Λ` decomposition).
    pub fn ic_schedule(&self) -> Result<Schedule, SchedError> {
        let tin = dual(&self.tree);
        let s_out = out_tree_schedule(&self.tree);
        let s_in = in_tree_schedule(&tin)?;
        let stages = [
            Stage {
                dag: &self.tree,
                map: &self.out_map,
                schedule: &s_out,
            },
            Stage {
                dag: &tin,
                map: &self.in_map,
                schedule: &s_in,
            },
        ];
        linear_composition_schedule(&self.dag, &stages)
    }

    /// Coarsen (Fig. 3): for each given out-tree node `v`, collapse the
    /// subtree rooted at `v` *together with* its mirrored in-tree portion
    /// into a single coarse task. The given roots' subtrees must be
    /// pairwise disjoint.
    pub fn coarsen_at(&self, roots: &[NodeId]) -> Result<Quotient, SchedError> {
        let n = self.dag.num_nodes();
        // usize::MAX marks "not yet clustered".
        let mut cluster = vec![usize::MAX; n];
        let mut next = 0usize;
        for &r in roots {
            if r.index() >= self.tree.num_nodes() {
                return Err(SchedError::Dag(ic_dag::DagError::InvalidNode(r)));
            }
            let sub = ic_dag::traversal::reachable_from(&self.tree, r);
            for (u, &in_subtree) in sub.iter().enumerate() {
                if !in_subtree {
                    continue;
                }
                for &cid in &[self.out_map[u], self.in_map[u]] {
                    if cluster[cid.index()] != usize::MAX && cluster[cid.index()] != next {
                        // Overlapping subtrees.
                        return Err(SchedError::Dag(ic_dag::DagError::BadClusterAssignment));
                    }
                    cluster[cid.index()] = next;
                }
            }
            next += 1;
        }
        for c in cluster.iter_mut() {
            if *c == usize::MAX {
                *c = next;
                next += 1;
            }
        }
        let assignment: Vec<u32> = cluster.iter().map(|&c| c as u32).collect();
        quotient(&self.dag, &assignment).map_err(SchedError::Dag)
    }
}

/// One component of an alternating expansion–reduction chain.
#[derive(Debug, Clone)]
pub enum Component {
    /// An out-tree (expansive phase).
    OutTree(Dag),
    /// An in-tree (reductive phase).
    InTree(Dag),
}

impl Component {
    fn dag(&self) -> &Dag {
        match self {
            Component::OutTree(d) | Component::InTree(d) => d,
        }
    }

    fn validate(&self) -> bool {
        match self {
            Component::OutTree(d) => is_out_tree(d),
            Component::InTree(d) => is_in_tree(d),
        }
    }
}

/// An alternating composition of out- and in-trees (Fig. 4 / Table 1),
/// with per-component provenance maps.
#[derive(Debug, Clone)]
pub struct AlternatingChain {
    /// The composite dag.
    pub dag: Dag,
    /// The components, in order.
    pub components: Vec<Component>,
    /// `maps[i][v]` = composite id of node `v` of component `i`.
    pub maps: Vec<Vec<NodeId>>,
}

/// Compose an alternating sequence of out-/in-trees. The boundary rule
/// follows Table 1: `Out → In` merges all leaves with all in-tree
/// sources (a diamond boundary, requiring equal counts); `In → Out`
/// merges the single sink with the single root. Consecutive components
/// of the same kind are rejected.
pub fn alternating(components: Vec<Component>) -> Result<AlternatingChain, SchedError> {
    if components.is_empty() {
        return Err(SchedError::InvalidSchedule);
    }
    for (i, c) in components.iter().enumerate() {
        if !c.validate() {
            return Err(SchedError::StageMismatch { stage: i });
        }
    }
    let mut chain = ChainBuilder::new(components[0].dag());
    for i in 1..components.len() {
        match (&components[i - 1], &components[i]) {
            (Component::OutTree(_), Component::InTree(next)) => {
                // Diamond boundary: all current sinks to all sources.
                chain.push_full(next).map_err(SchedError::Dag)?;
            }
            (Component::InTree(_), Component::OutTree(next)) => {
                // Single-node boundary: the unique current sink is the
                // previous in-tree's sink (an in-tree has one sink and it
                // cannot have been merged away).
                let sink = chain
                    .current()
                    .sinks()
                    .next()
                    .ok_or(SchedError::StageMismatch { stage: i })?;
                let root = next
                    .sources()
                    .next()
                    .ok_or(SchedError::StageMismatch { stage: i })?;
                chain.push(next, &[(sink, root)]).map_err(SchedError::Dag)?;
            }
            _ => return Err(SchedError::StageMismatch { stage: i }),
        }
    }
    let (dag, maps) = chain.finish();
    Ok(AlternatingChain {
        dag,
        components,
        maps,
    })
}

impl AlternatingChain {
    /// The IC-optimal schedule: components in order; out-trees by any
    /// schedule, in-trees by the paired (dual-packet) schedule
    /// (Theorem 2.1 plus the topological forcing argument of §3.1 for
    /// in→out boundaries).
    pub fn ic_schedule(&self) -> Result<Schedule, SchedError> {
        let schedules: Vec<Schedule> = self
            .components
            .iter()
            .map(|c| match c {
                Component::OutTree(d) => Ok(out_tree_schedule(d)),
                Component::InTree(d) => in_tree_schedule(d),
            })
            .collect::<Result<_, _>>()?;
        let stages: Vec<Stage<'_>> = self
            .components
            .iter()
            .zip(&self.maps)
            .zip(&schedules)
            .map(|((c, map), schedule)| Stage {
                dag: c.dag(),
                map,
                schedule,
            })
            .collect();
        linear_composition_schedule(&self.dag, &stages)
    }
}

/// Table 1, row 1: a chain of diamonds `D_0 ⇑ ... ⇑ D_n`, each generated
/// from its out-tree.
pub fn diamond_chain(trees: &[&Dag]) -> Result<AlternatingChain, SchedError> {
    let mut comps = Vec::with_capacity(trees.len() * 2);
    for t in trees {
        comps.push(Component::OutTree((*t).clone()));
        comps.push(Component::InTree(dual(t)));
    }
    alternating(comps)
}

/// Table 1, row 2: an in-tree-led chain `T^(in) ⇑ D_1 ⇑ ... ⇑ D_n`.
pub fn in_tree_led(lead: &Dag, trees: &[&Dag]) -> Result<AlternatingChain, SchedError> {
    let mut comps = vec![Component::InTree(lead.clone())];
    for t in trees {
        comps.push(Component::OutTree((*t).clone()));
        comps.push(Component::InTree(dual(t)));
    }
    alternating(comps)
}

/// Table 1, row 3: an out-tree-tailed chain `D_1 ⇑ ... ⇑ D_n ⇑ T^(out)`.
pub fn out_tree_tailed(trees: &[&Dag], tail: &Dag) -> Result<AlternatingChain, SchedError> {
    let mut comps = Vec::with_capacity(trees.len() * 2 + 1);
    for t in trees {
        comps.push(Component::OutTree((*t).clone()));
        comps.push(Component::InTree(dual(t)));
    }
    comps.push(Component::OutTree(tail.clone()));
    alternating(comps)
}

/// Registered paper claims for expansion-reduction diamonds
/// (Figs. 2\u{2013}4, \u{00a7}3.1).
pub fn claims() -> Vec<crate::claims::Claim> {
    use crate::claims::{Claim, Guarantee};
    use crate::trees::complete_out_tree;
    let d = diamond_from_out_tree(&complete_out_tree(2, 2)).expect("diamond builds");
    let s = d.ic_schedule().expect("diamond schedule exists");
    vec![Claim::new(
        "diamond/complete-2-2",
        "Figs. 2\u{2013}4, \u{00a7}3.1",
        "tree-then-dual-tree order is IC-optimal on the diamond T \u{21d1} T\u{0303}",
        d.dag,
        s,
        Guarantee::IcOptimal,
    )]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trees::{complete_in_tree, complete_out_tree, random_branching_out_tree};
    use ic_sched::optimal::{admits_ic_optimal, is_ic_optimal};

    #[test]
    fn diamond_of_depth2_tree() {
        let t = complete_out_tree(2, 2); // 7 nodes, 4 leaves
        let d = diamond_from_out_tree(&t).unwrap();
        // 7 + 7 - 4 merged leaves = 10 nodes.
        assert_eq!(d.dag.num_nodes(), 10);
        assert_eq!(d.dag.num_sources(), 1);
        assert_eq!(d.dag.num_sinks(), 1);
        // Leaves are shared between the maps.
        for v in t.sinks() {
            assert_eq!(d.out_map[v.index()], d.in_map[v.index()]);
        }
    }

    #[test]
    fn diamond_schedule_is_ic_optimal() {
        for (a, depth) in [(2, 1), (2, 2), (3, 1)] {
            let t = complete_out_tree(a, depth);
            let d = diamond_from_out_tree(&t).unwrap();
            let s = d.ic_schedule().unwrap();
            assert!(
                is_ic_optimal(&d.dag, &s).unwrap(),
                "diamond of arity {a} depth {depth}"
            );
        }
    }

    #[test]
    fn irregular_diamond_schedule_is_ic_optimal() {
        // Irregular but *branching* trees (every internal node >= 2
        // children) — the Vee-composition class the theory covers.
        for seed in 0..5 {
            let t = random_branching_out_tree(8, 2, seed);
            let d = diamond_from_out_tree(&t).unwrap();
            let s = d.ic_schedule().unwrap();
            assert!(is_ic_optimal(&d.dag, &s).unwrap(), "seed {seed}");
        }
    }

    #[test]
    fn coarsened_diamond_fig3() {
        // Fig. 3 coarsens two mirrored subtree pairs of the Fig. 2
        // diamond. Take the depth-2 binary diamond and coarsen at both
        // depth-1 internal nodes.
        let t = complete_out_tree(2, 2);
        let d = diamond_from_out_tree(&t).unwrap();
        let q = d.coarsen_at(&[NodeId(1)]).unwrap();
        // Subtree of node 1 = {1, 3, 4}; its mirror = {1', 3', 4'} but
        // leaves are shared: out {1,3,4} + in {1'} = 4 fine nodes fused.
        assert_eq!(q.dag.num_nodes(), d.dag.num_nodes() - 3);
        // The coarsened diamond still admits an IC-optimal schedule.
        assert!(admits_ic_optimal(&q.dag).unwrap());
    }

    #[test]
    fn coarsen_two_disjoint_branches() {
        let t = complete_out_tree(2, 2);
        let d = diamond_from_out_tree(&t).unwrap();
        let q = d.coarsen_at(&[NodeId(1), NodeId(2)]).unwrap();
        assert!(admits_ic_optimal(&q.dag).unwrap());
        // Two coarse tasks of granularity 4 each (3 tree + 1 mirror).
        assert_eq!(q.granularity(NodeId(0)), 4);
        assert_eq!(q.granularity(NodeId(1)), 4);
    }

    #[test]
    fn coarsen_rejects_overlapping_subtrees() {
        let t = complete_out_tree(2, 2);
        let d = diamond_from_out_tree(&t).unwrap();
        // Node 1's subtree contains node 3.
        assert!(d.coarsen_at(&[NodeId(1), NodeId(3)]).is_err());
    }

    #[test]
    fn diamond_chain_table1_row1() {
        let t0 = complete_out_tree(2, 1); // V
        let t1 = complete_out_tree(2, 1);
        let chain = diamond_chain(&[&t0, &t1]).unwrap();
        // Each diamond: 3 + 3 - 2 = 4 nodes; chained via 1 merge: 7.
        assert_eq!(chain.dag.num_nodes(), 7);
        let s = chain.ic_schedule().unwrap();
        assert!(is_ic_optimal(&chain.dag, &s).unwrap());
    }

    #[test]
    fn in_tree_led_table1_row2() {
        let lead = complete_in_tree(2, 1); // Λ
        let t1 = complete_out_tree(2, 1);
        let chain = in_tree_led(&lead, &[&t1]).unwrap();
        // Λ (3) + D (4) - 1 merge = 6.
        assert_eq!(chain.dag.num_nodes(), 6);
        assert_eq!(chain.dag.num_sources(), 2);
        let s = chain.ic_schedule().unwrap();
        assert!(is_ic_optimal(&chain.dag, &s).unwrap());
    }

    #[test]
    fn out_tree_tailed_table1_row3() {
        let t1 = complete_out_tree(2, 1);
        let tail = complete_out_tree(2, 2);
        let chain = out_tree_tailed(&[&t1], &tail).unwrap();
        // D (4) + T (7) - 1 = 10.
        assert_eq!(chain.dag.num_nodes(), 10);
        assert_eq!(chain.dag.num_sinks(), 4);
        let s = chain.ic_schedule().unwrap();
        assert!(is_ic_optimal(&chain.dag, &s).unwrap());
    }

    #[test]
    fn leftmost_fig4_in_tree_then_out_tree() {
        // The leftmost dag of Fig. 4: T' ⇑ T merging T'ated sink with
        // T's root; topology forces all of T' before any of T.
        let chain = alternating(vec![
            Component::InTree(complete_in_tree(2, 2)),
            Component::OutTree(complete_out_tree(2, 2)),
        ])
        .unwrap();
        assert_eq!(chain.dag.num_nodes(), 13);
        let s = chain.ic_schedule().unwrap();
        assert!(is_ic_optimal(&chain.dag, &s).unwrap());
    }

    #[test]
    fn mismatched_leaf_counts_rejected() {
        // Out-tree with 4 leaves followed by in-tree with 2 sources.
        let res = alternating(vec![
            Component::OutTree(complete_out_tree(2, 2)),
            Component::InTree(complete_in_tree(2, 1)),
        ]);
        assert!(res.is_err());
    }

    #[test]
    fn same_kind_neighbors_rejected() {
        let res = alternating(vec![
            Component::OutTree(complete_out_tree(2, 1)),
            Component::OutTree(complete_out_tree(2, 1)),
        ]);
        assert!(res.is_err());
    }

    #[test]
    fn non_tree_component_rejected() {
        let d = ic_dag::builder::from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let res = alternating(vec![Component::OutTree(d)]);
        assert!(matches!(res, Err(SchedError::StageMismatch { stage: 0 })));
    }

    #[test]
    fn unequal_leaf_alternation_fig4_rightmost() {
        // The rightmost dag of Fig. 4: leaf counts of composed out- and
        // in-trees need not match across *different* diamonds.
        let t_small = complete_out_tree(2, 1); // 2 leaves
        let t_large = complete_out_tree(2, 2); // 4 leaves
        let chain = diamond_chain(&[&t_small, &t_large]).unwrap();
        let s = chain.ic_schedule().unwrap();
        assert!(is_ic_optimal(&chain.dag, &s).unwrap());
    }
}
