//! The machine-checkable **claims registry**.
//!
//! Every family module of this crate registers the paper claims its
//! constructors realize — "this dag with this closed-form schedule is
//! IC-optimal (Figure/Theorem so-and-so)", "this family is a ▷-linear
//! chain", "the dual construction preserves optimality" — as [`Claim`]
//! values. The registry is *data*: the `ic-audit` crate walks it and
//! machine-checks each claim (exhaustively at small sizes, structurally
//! at scale), and `ic-prio audit --claims` reports the results. A claim
//! that stops holding after a refactor is a regression in the
//! reproduction, caught without any human rereading the paper.

use ic_dag::Dag;
use ic_sched::Schedule;

/// The level of scheduling guarantee a claim asserts for its schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Guarantee {
    /// The schedule attains the optimal eligibility envelope — it is
    /// IC-optimal. Certified exhaustively when the dag is small enough.
    IcOptimal,
    /// The dag admits **no** IC-optimal schedule at this parameter (the
    /// paper's point is the obstruction itself); the registered
    /// schedule is still a valid execution order.
    NoIcOptimal,
    /// Structural claim only: the schedule realizes the paper's
    /// construction as a valid execution order (used for instances
    /// beyond exhaustive certification size).
    ValidOrder,
}

/// One registered paper claim: a family instance, its closed-form
/// schedule, and what the paper asserts about the pair.
pub struct Claim {
    /// Stable registry key, e.g. `"mesh/out-mesh-5"`.
    pub id: &'static str,
    /// Where the claim lives in the paper, e.g. `"Fig. 5, §4"`.
    pub source: &'static str,
    /// One-line human statement of the claim.
    pub title: &'static str,
    /// The constructed dag instance.
    pub dag: Dag,
    /// The paper's closed-form schedule for it.
    pub schedule: Schedule,
    /// What the schedule is claimed to be.
    pub guarantee: Guarantee,
    /// Closed-form *nonsink* eligibility profile, when the paper gives
    /// one (e.g. the flat `E(x) = s` of the N-dags).
    pub expected_nonsink_profile: Option<Vec<usize>>,
    /// Check Theorem 2.2 here: `dual(dual(G)) ≅ G`, and the reversed
    /// packet schedule is IC-optimal on `dual(G)`.
    pub check_duality: bool,
    /// A claimed ▷-chain `G_1 ▷ G_2 ▷ …` (each stage with its
    /// IC-optimal schedule), e.g. the W-chain of the mesh
    /// decomposition. Empty when the claim makes no chain assertion.
    pub priority_chain: Vec<(Dag, Schedule)>,
}

impl Claim {
    /// A claim with no profile/duality/chain assertions; use the
    /// builder methods to add them.
    pub fn new(
        id: &'static str,
        source: &'static str,
        title: &'static str,
        dag: Dag,
        schedule: Schedule,
        guarantee: Guarantee,
    ) -> Self {
        Claim {
            id,
            source,
            title,
            dag,
            schedule,
            guarantee,
            expected_nonsink_profile: None,
            check_duality: false,
            priority_chain: Vec::new(),
        }
    }

    /// Assert the closed-form nonsink eligibility profile.
    pub fn with_profile(mut self, profile: Vec<usize>) -> Self {
        self.expected_nonsink_profile = Some(profile);
        self
    }

    /// Assert the Theorem 2.2 duality properties on this instance.
    pub fn with_duality(mut self) -> Self {
        self.check_duality = true;
        self
    }

    /// Assert a ▷-linear chain of stages.
    pub fn with_priority_chain(mut self, chain: Vec<(Dag, Schedule)>) -> Self {
        self.priority_chain = chain;
        self
    }
}

/// Every claim registered across all family modules, in paper order.
pub fn all() -> Vec<Claim> {
    let mut claims = Vec::new();
    claims.extend(crate::primitives::claims());
    claims.extend(crate::trees::claims());
    claims.extend(crate::diamond::claims());
    claims.extend(crate::mesh::claims());
    claims.extend(crate::butterfly::claims());
    claims.extend(crate::sorting::claims());
    claims.extend(crate::prefix::claims());
    claims.extend(crate::dlt::claims());
    claims.extend(crate::paths::claims());
    claims.extend(crate::matmul::claims());
    claims
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_populated_and_keys_are_unique() {
        let claims = all();
        assert!(
            claims.len() >= 12,
            "only {} claims registered",
            claims.len()
        );
        let mut ids: Vec<&str> = claims.iter().map(|c| c.id).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(before, ids.len(), "duplicate claim ids");
    }

    #[test]
    fn every_claim_schedule_covers_its_dag() {
        for c in all() {
            assert_eq!(c.schedule.len(), c.dag.num_nodes(), "claim {}", c.id);
        }
    }
}
