//! Symbolic envelope certification for large family instances.
//!
//! Exhaustive envelope computation (the down-set lattice walked by
//! `ic_sched::optimal`) is only feasible up to a couple dozen nodes.
//! The paper's families, however, come with *closed-form* IC-optimal
//! schedules valid at every size — the very claims the registry in
//! [`crate::claims`] pins and `ic-audit` verifies exhaustively on small
//! instances. This module closes the loop for big instances: it
//! recognizes a dag as a member of one of those families (by exact
//! arc-set equality against the canonical constructor's output) and
//! returns the family schedule's eligibility profile as the certified
//! optimal envelope.
//!
//! Recognition is deliberately strict: node ids must follow the
//! family's canonical numbering, i.e. the dag must have been produced
//! by (or serialized from) the constructors in this crate. An
//! isomorphic relabeling is *not* recognized — certifying one would
//! require a graph-isomorphism search this crate does not attempt.

use ic_dag::Dag;

use crate::prefix::prefix_rows;
use crate::{butterfly, dlt, mesh, prefix, trees};

/// A closed-form optimal envelope for a recognized family instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymbolicEnvelope {
    /// Human-readable family instance, e.g. `"out-mesh(10)"`.
    pub family: String,
    /// Where the paper states the family's IC-optimal schedule.
    pub source: &'static str,
    /// The full eligibility profile `E(0..=n)` of the family's
    /// IC-optimal schedule — pointwise maximal by IC-optimality.
    pub envelope: Vec<usize>,
}

/// Largest constructor parameter any recognizer will try. Generous: an
/// out-mesh at this limit has ~8M nodes, far past simulation scale.
const MAX_PARAM: usize = 4096;

/// Recognize `dag` as a canonical family instance and return the
/// closed-form optimal envelope, or `None` if no family matches.
///
/// Families tried: out-/in-meshes (§4), butterflies (§5),
/// parallel-prefix dags (§6.1), DLT dags (§6.2.1), and complete
/// out-/in-trees of arity 2–8 (§3.1).
///
/// ```
/// use ic_families::mesh::out_mesh;
/// use ic_families::symbolic::certify;
///
/// let m = out_mesh(10); // 55 nodes: past the exhaustive limit
/// let cert = certify(&m).expect("canonical mesh is recognized");
/// assert_eq!(cert.family, "out-mesh(10)");
/// assert_eq!(cert.envelope.len(), m.num_nodes() + 1);
/// ```
pub fn certify(dag: &Dag) -> Option<SymbolicEnvelope> {
    certify_mesh(dag)
        .or_else(|| certify_butterfly(dag))
        .or_else(|| certify_prefix(dag))
        .or_else(|| certify_dlt(dag))
        .or_else(|| certify_trees(dag))
}

/// Exact structural equality: same node count and identical arc sets
/// under the same node numbering.
fn same_dag(dag: &Dag, candidate: &Dag) -> bool {
    if dag.num_nodes() != candidate.num_nodes() || dag.num_arcs() != candidate.num_arcs() {
        return false;
    }
    let mut a: Vec<_> = dag.arcs().collect();
    let mut b: Vec<_> = candidate.arcs().collect();
    a.sort_unstable();
    b.sort_unstable();
    a == b
}

fn certify_mesh(dag: &Dag) -> Option<SymbolicEnvelope> {
    let n = dag.num_nodes();
    // An L-level triangular mesh has L(L+1)/2 nodes.
    let levels = (1..=MAX_PARAM).find(|&l| l * (l + 1) / 2 >= n)?;
    if levels * (levels + 1) / 2 != n {
        return None;
    }
    let out = mesh::out_mesh(levels);
    if same_dag(dag, &out) {
        return Some(SymbolicEnvelope {
            family: format!("out-mesh({levels})"),
            source: "§4, Fig. 5",
            envelope: mesh::out_mesh_schedule(&out).profile(dag),
        });
    }
    let inm = mesh::in_mesh(levels);
    if same_dag(dag, &inm) {
        return Some(SymbolicEnvelope {
            family: format!("in-mesh({levels})"),
            source: "§4 (dual of Fig. 5)",
            envelope: mesh::in_mesh_schedule(&inm).ok()?.profile(dag),
        });
    }
    None
}

fn certify_butterfly(dag: &Dag) -> Option<SymbolicEnvelope> {
    let n = dag.num_nodes();
    // B_d has (d+1) * 2^d nodes.
    let d = (1..=48).find(|&d| (d + 1) << d >= n)?;
    if (d + 1) << d != n {
        return None;
    }
    let b = butterfly::butterfly(d);
    same_dag(dag, &b).then(|| SymbolicEnvelope {
        family: format!("butterfly({d})"),
        source: "§5, Fig. 10",
        envelope: butterfly::butterfly_schedule(d).profile(dag),
    })
}

fn certify_prefix(dag: &Dag) -> Option<SymbolicEnvelope> {
    let n = dag.num_nodes();
    // P_k has prefix_rows(k) * k nodes.
    let k = (1..=MAX_PARAM).find(|&k| prefix_rows(k) * k >= n)?;
    if prefix_rows(k) * k != n {
        return None;
    }
    let p = prefix::parallel_prefix(k);
    same_dag(dag, &p).then(|| SymbolicEnvelope {
        family: format!("parallel-prefix({k})"),
        source: "§6.1, Figs. 11–12",
        envelope: prefix::prefix_schedule(k).profile(dag),
    })
}

fn certify_dlt(dag: &Dag) -> Option<SymbolicEnvelope> {
    let n = dag.num_nodes();
    // L_k (k a power of two) merges P_k's sinks with T_k's sources:
    // prefix_rows(k)*k + (2k - 1) - k nodes.
    let k = (1..=12)
        .map(|p| 1usize << p)
        .find(|&k| prefix_rows(k) * k + k > n)?;
    if prefix_rows(k) * k + k - 1 != n {
        return None;
    }
    let l = dlt::dlt_prefix(k);
    if !same_dag(dag, &l.dag) {
        return None;
    }
    Some(SymbolicEnvelope {
        family: format!("dlt-prefix({k})"),
        source: "§6.2.1, Fig. 13",
        envelope: l.ic_schedule().ok()?.profile(dag),
    })
}

fn certify_trees(dag: &Dag) -> Option<SymbolicEnvelope> {
    let n = dag.num_nodes();
    for arity in 2..=8usize {
        // A complete arity-ary tree of depth h has 1 + a + … + a^h nodes.
        let mut count = 1usize;
        let mut level = 1usize;
        let mut depth = 0usize;
        while count < n {
            level = level.saturating_mul(arity);
            count = count.saturating_add(level);
            depth += 1;
        }
        if count != n || depth == 0 {
            continue;
        }
        let out = trees::complete_out_tree(arity, depth);
        if same_dag(dag, &out) {
            return Some(SymbolicEnvelope {
                family: format!("out-tree({arity}, depth {depth})"),
                source: "§3.1",
                envelope: trees::out_tree_schedule(&out).profile(dag),
            });
        }
        let int = trees::complete_in_tree(arity, depth);
        if same_dag(dag, &int) {
            return Some(SymbolicEnvelope {
                family: format!("in-tree({arity}, depth {depth})"),
                source: "§3.1",
                envelope: trees::in_tree_schedule(&int).ok()?.profile(dag),
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_dag::builder::from_arcs;

    #[test]
    fn recognizes_large_meshes() {
        let m = mesh::out_mesh(10);
        let cert = certify(&m).expect("out-mesh");
        assert_eq!(cert.family, "out-mesh(10)");
        assert_eq!(cert.envelope.len(), 56);
        assert_eq!(cert.envelope[0], 1);
        assert_eq!(*cert.envelope.last().unwrap(), 0);

        let im = mesh::in_mesh(9);
        assert_eq!(certify(&im).expect("in-mesh").family, "in-mesh(9)");
    }

    #[test]
    fn recognizes_butterfly_prefix_dlt_and_trees() {
        assert_eq!(
            certify(&butterfly::butterfly(3)).expect("butterfly").family,
            "butterfly(3)"
        );
        assert_eq!(
            certify(&prefix::parallel_prefix(8)).expect("prefix").family,
            "parallel-prefix(8)"
        );
        assert_eq!(
            certify(&dlt::dlt_prefix(8).dag).expect("dlt").family,
            "dlt-prefix(8)"
        );
        assert_eq!(
            certify(&trees::complete_out_tree(3, 3))
                .expect("out-tree")
                .family,
            "out-tree(3, depth 3)"
        );
        assert_eq!(
            certify(&trees::complete_in_tree(2, 4))
                .expect("in-tree")
                .family,
            "in-tree(2, depth 4)"
        );
    }

    #[test]
    fn envelope_matches_schedule_profile() {
        let b = butterfly::butterfly(2);
        let cert = certify(&b).unwrap();
        assert_eq!(cert.envelope, butterfly::butterfly_schedule(2).profile(&b));
    }

    #[test]
    fn rejects_perturbed_and_foreign_dags() {
        // An out-mesh with one arc removed has the node count of a mesh
        // but not its arc set.
        let m = mesh::out_mesh(10);
        let arcs: Vec<(u32, u32)> = m.arcs().skip(1).map(|(u, v)| (u.0, v.0)).collect();
        let perturbed = from_arcs(m.num_nodes(), &arcs).unwrap();
        assert!(certify(&perturbed).is_none());

        // An arbitrary diamond is no family instance.
        let g = from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        assert!(certify(&g).is_none());
    }
}
