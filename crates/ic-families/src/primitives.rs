//! The building-block dags of IC-Scheduling Theory.
//!
//! * the **Vee dag** `V` and **Lambda dag** `Λ` (Fig. 1), and their
//!   degree-`d` generalizations (the 3-prong `V₃` of Fig. 14 among them);
//! * the **butterfly building block** `B` (Fig. 8);
//! * the **N-dags** `N_s` (§6.1, Fig. 12);
//! * the **W-dags** and **M-dags** (§4, Fig. 6);
//! * the **(bipartite) cycle-dags** `C_s` (§7.2).
//!
//! Node-id conventions: sources come first (ids `0..s`), then sinks —
//! chosen so that `Schedule::in_id_order` *is* the closed-form IC-optimal
//! schedule of every primitive (anchored order for `N_s`, consecutive
//! sources for `W_s`, cyclic order for `C_s`, paired sources for `B`).

use ic_dag::{Dag, DagBuilder, NodeId};
use ic_sched::Schedule;

/// The Vee dag `V`: one source `w` with two children `x0`, `x1`
/// (Fig. 1 left). The building block of "expansive" computations.
pub fn vee() -> Dag {
    vee_d(2)
}

/// The degree-`d` Vee dag: one source with `d` children. `vee_d(3)` is
/// the 3-prong Vee dag `V₃` of Fig. 14.
///
/// # Panics
/// Panics if `d == 0`.
pub fn vee_d(d: usize) -> Dag {
    assert!(d > 0, "vee_d requires at least one child");
    let mut b = DagBuilder::with_capacity(d + 1);
    let w = b.add_node("w");
    for i in 0..d {
        let x = b.add_node(format!("x{i}"));
        b.add_arc(w, x).expect("valid by construction");
    }
    b.build().expect("a star is acyclic")
}

/// The Lambda dag `Λ`: two sources `y0`, `y1` with one common child `z`
/// (Fig. 1 right). The building block of "reductive" computations.
/// Dual to [`vee`].
pub fn lambda() -> Dag {
    lambda_d(2)
}

/// The degree-`d` Lambda dag: `d` sources with one common child.
///
/// # Panics
/// Panics if `d == 0`.
pub fn lambda_d(d: usize) -> Dag {
    assert!(d > 0, "lambda_d requires at least one parent");
    let mut b = DagBuilder::with_capacity(d + 1);
    let ys: Vec<NodeId> = (0..d).map(|i| b.add_node(format!("y{i}"))).collect();
    let z = b.add_node("z");
    for y in ys {
        b.add_arc(y, z).expect("valid by construction");
    }
    b.build().expect("an in-star is acyclic")
}

/// The butterfly building block `B` (Fig. 8): sources `x0`, `x1`; sinks
/// `y0`, `y1`; complete bipartite arcs. `B = B₁`, the 1-dimensional
/// butterfly network.
pub fn butterfly_block() -> Dag {
    let mut b = DagBuilder::with_capacity(4);
    let x0 = b.add_node("x0");
    let x1 = b.add_node("x1");
    let y0 = b.add_node("y0");
    let y1 = b.add_node("y1");
    for &x in &[x0, x1] {
        for &y in &[y0, y1] {
            b.add_arc(x, y).expect("valid by construction");
        }
    }
    b.build().expect("bipartite blocks are acyclic")
}

/// The `s`-source N-dag `N_s` (§6.1): sources `0..s`, sinks `s..2s`;
/// source `v` has arcs to sink `v` and (when it exists) sink `v+1` —
/// `2s − 1` arcs in all. Source `0` is the *anchor*: its child has no
/// other parents.
///
/// The IC-optimal schedule executes the sources sequentially starting
/// with the anchor — which is exactly id order.
///
/// # Panics
/// Panics if `s == 0`.
pub fn n_dag(s: usize) -> Dag {
    assert!(s > 0, "n_dag requires at least one source");
    let mut b = DagBuilder::with_capacity(2 * s);
    let sources: Vec<NodeId> = (0..s).map(|i| b.add_node(format!("u{i}"))).collect();
    let sinks: Vec<NodeId> = (0..s).map(|i| b.add_node(format!("v{i}"))).collect();
    for i in 0..s {
        b.add_arc(sources[i], sinks[i]).expect("valid");
        if i + 1 < s {
            b.add_arc(sources[i], sinks[i + 1]).expect("valid");
        }
    }
    b.build().expect("bipartite")
}

/// The `s`-source W-dag `W_s` (§4, Fig. 6): sources `0..s`, sinks
/// `s..2s+1`; source `v` has arcs to sinks `v` and `v+1` (both always
/// exist) — `2s` arcs. One diagonal-step of an out-mesh.
///
/// The IC-optimal schedule executes the sources consecutively left to
/// right — id order.
///
/// # Panics
/// Panics if `s == 0`.
pub fn w_dag(s: usize) -> Dag {
    assert!(s > 0, "w_dag requires at least one source");
    let mut b = DagBuilder::with_capacity(2 * s + 1);
    let sources: Vec<NodeId> = (0..s).map(|i| b.add_node(format!("u{i}"))).collect();
    let sinks: Vec<NodeId> = (0..=s).map(|i| b.add_node(format!("v{i}"))).collect();
    for i in 0..s {
        b.add_arc(sources[i], sinks[i]).expect("valid");
        b.add_arc(sources[i], sinks[i + 1]).expect("valid");
    }
    b.build().expect("bipartite")
}

/// The `s`-sink M-dag `M_s` (§4): the dual of [`w_dag`] — `s + 1`
/// sources, `s` sinks, sink `v` with parents `v` and `v+1`. One
/// diagonal-step of an in-mesh.
pub fn m_dag(s: usize) -> Dag {
    ic_dag::dual(&w_dag(s))
}

/// The `s`-source (bipartite) cycle-dag `C_s` (§7.2, `s ≥ 2`): sources
/// `0..s`, sinks `s..2s`; source `v` has arcs to sinks `v` and
/// `(v+1) mod s`.
///
/// The IC-optimal schedule executes the sources in consecutive cyclic
/// order — id order.
///
/// # Panics
/// Panics if `s < 2`.
pub fn cycle_dag(s: usize) -> Dag {
    assert!(s >= 2, "cycle_dag requires at least two sources");
    let mut b = DagBuilder::with_capacity(2 * s);
    let sources: Vec<NodeId> = (0..s).map(|i| b.add_node(format!("u{i}"))).collect();
    let sinks: Vec<NodeId> = (0..s).map(|i| b.add_node(format!("v{i}"))).collect();
    for i in 0..s {
        b.add_arc(sources[i], sinks[i]).expect("valid");
        b.add_arc(sources[i], sinks[(i + 1) % s]).expect("valid");
    }
    b.build().expect("bipartite")
}

/// The canonical IC-optimal schedule of any primitive in this module:
/// id order (sources in anchored/consecutive/cyclic order, then sinks).
pub fn ic_schedule(dag: &Dag) -> Schedule {
    Schedule::in_id_order(dag)
}

/// Registered paper claims for the primitive building blocks (Figs. 1,
/// 6, 8, 12, 14; §7.2). These are the base cases every composite
/// family's claim reduces to.
pub fn claims() -> Vec<crate::claims::Claim> {
    use crate::claims::{Claim, Guarantee};
    let chain_of = |dags: Vec<Dag>| -> Vec<(Dag, Schedule)> {
        dags.into_iter()
            .map(|g| {
                let s = ic_schedule(&g);
                (g, s)
            })
            .collect()
    };
    let v = vee();
    let sv = ic_schedule(&v);
    let l = lambda();
    let sl = ic_schedule(&l);
    let v3 = vee_d(3);
    let sv3 = ic_schedule(&v3);
    let bb = butterfly_block();
    let sbb = ic_schedule(&bb);
    let n4 = n_dag(4);
    let sn4 = ic_schedule(&n4);
    let w3 = w_dag(3);
    let sw3 = ic_schedule(&w3);
    let c4 = cycle_dag(4);
    let sc4 = ic_schedule(&c4);
    vec![
        Claim::new(
            "primitives/vee",
            "Fig. 1, \u{00a7}2.3.2",
            "the Vee dag V is IC-optimally scheduled by source-first order, and V \u{25b7} \u{039b}",
            v.clone(),
            sv,
            Guarantee::IcOptimal,
        )
        .with_duality()
        .with_priority_chain(chain_of(vec![vee(), lambda()])),
        Claim::new(
            "primitives/lambda",
            "Fig. 1, \u{00a7}2.3.2",
            "the Lambda dag \u{039b} (dual of V) is IC-optimally scheduled by source-first order",
            l,
            sl,
            Guarantee::IcOptimal,
        ),
        Claim::new(
            "primitives/vee3",
            "Fig. 14, \u{00a7}6.2.1",
            "the 3-ary Vee V\u{2083} is IC-optimal and V\u{2083} \u{25b7} V\u{2083} \u{25b7} \u{039b} \u{25b7} \u{039b}",
            v3,
            sv3,
            Guarantee::IcOptimal,
        )
        .with_priority_chain(chain_of(vec![vee_d(3), vee_d(3), lambda(), lambda()])),
        Claim::new(
            "primitives/butterfly-block",
            "Fig. 8, \u{00a7}5.1",
            "the butterfly block B has nonsink profile (2, 1, 2) and B \u{25b7} B",
            bb,
            sbb,
            Guarantee::IcOptimal,
        )
        .with_profile(vec![2, 1, 2])
        .with_priority_chain(chain_of(vec![butterfly_block(), butterfly_block()])),
        Claim::new(
            "primitives/n-dag-4",
            "Fig. 12, \u{00a7}6.1",
            "the anchored schedule of N\u{2084} keeps the flat envelope E(x) = 4, and N_s \u{25b7} N_t",
            n4,
            sn4,
            Guarantee::IcOptimal,
        )
        .with_profile(vec![4; 5])
        .with_priority_chain(chain_of(vec![n_dag(3), n_dag(2), n_dag(1)])),
        Claim::new(
            "primitives/w-dag-3",
            "Fig. 6, \u{00a7}4",
            "the consecutive-source schedule of W\u{2083} has profile (3, 3, 3, 4)",
            w3,
            sw3,
            Guarantee::IcOptimal,
        )
        .with_profile(vec![3, 3, 3, 4])
        .with_duality(),
        Claim::new(
            "primitives/cycle-dag-4",
            "\u{00a7}7.2",
            "the cycle-dag C\u{2084} is IC-optimal with profile (4, 3, 3, 3, 4), and C\u{2084} \u{25b7} C\u{2084} \u{25b7} \u{039b}",
            c4,
            sc4,
            Guarantee::IcOptimal,
        )
        .with_profile(vec![4, 3, 3, 3, 4])
        .with_priority_chain(chain_of(vec![cycle_dag(4), cycle_dag(4), lambda(), lambda()])),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_dag::dual;
    use ic_sched::optimal::{every_schedule_ic_optimal, is_ic_optimal};
    use ic_sched::priority::has_priority;

    #[test]
    fn vee_shape() {
        let v = vee();
        assert_eq!(v.num_nodes(), 3);
        assert_eq!(v.num_sources(), 1);
        assert_eq!(v.num_sinks(), 2);
        assert_eq!(v.out_degree(NodeId(0)), 2);
    }

    #[test]
    fn vee3_shape() {
        let v3 = vee_d(3);
        assert_eq!(v3.num_nodes(), 4);
        assert_eq!(v3.num_sinks(), 3);
    }

    #[test]
    fn lambda_is_dual_of_vee() {
        // Shape equality (up to node renaming): both 3 nodes, mirrored
        // degrees.
        let l = lambda();
        assert_eq!(l.num_sources(), 2);
        assert_eq!(l.num_sinks(), 1);
        let dv = dual(&vee());
        assert_eq!(dv.num_sources(), 2);
        assert_eq!(dv.num_sinks(), 1);
    }

    #[test]
    fn butterfly_block_shape() {
        let bb = butterfly_block();
        assert_eq!(bb.num_nodes(), 4);
        assert_eq!(bb.num_arcs(), 4);
        assert_eq!(bb.num_sources(), 2);
        assert_eq!(bb.num_sinks(), 2);
        assert!(bb.has_arc(NodeId(0), NodeId(2)));
        assert!(bb.has_arc(NodeId(1), NodeId(3)));
    }

    #[test]
    fn n_dag_structure() {
        let n4 = n_dag(4);
        assert_eq!(n4.num_nodes(), 8);
        assert_eq!(n4.num_arcs(), 7); // 2s - 1
                                      // Anchor's child (sink 4) has a single parent.
        assert_eq!(n4.in_degree(NodeId(4)), 1);
        // Interior sinks have two parents.
        assert_eq!(n4.in_degree(NodeId(5)), 2);
        // Last source has out-degree 1.
        assert_eq!(n4.out_degree(NodeId(3)), 1);
    }

    #[test]
    fn n_dag_profile_is_flat() {
        // E(x) = s for all x in [0, s] under the anchored schedule.
        for s in 1..6 {
            let g = n_dag(s);
            let p = ic_schedule(&g).nonsink_profile(&g);
            assert_eq!(p, vec![s; s + 1], "N_{s} profile");
        }
    }

    #[test]
    fn n_dag_anchored_schedule_is_ic_optimal() {
        for s in 1..6 {
            let g = n_dag(s);
            assert!(is_ic_optimal(&g, &ic_schedule(&g)).unwrap());
        }
    }

    #[test]
    fn n_dag_priorities_hold_for_all_sizes() {
        // Fact (1) of §6.2.1: N_s ▷ N_t for all s and t.
        for s in 1..5 {
            for t in 1..5 {
                let (gs, gt) = (n_dag(s), n_dag(t));
                assert!(
                    has_priority(&gs, &ic_schedule(&gs), &gt, &ic_schedule(&gt)),
                    "N_{s} ▷ N_{t} failed"
                );
            }
        }
    }

    #[test]
    fn w_dag_structure_and_schedule() {
        let w3 = w_dag(3);
        assert_eq!(w3.num_nodes(), 7);
        assert_eq!(w3.num_arcs(), 6);
        assert_eq!(w3.num_sinks(), 4);
        assert!(is_ic_optimal(&w3, &ic_schedule(&w3)).unwrap());
        // Consecutive-source profile: s, s, ..., s, s+1.
        let p = ic_schedule(&w3).nonsink_profile(&w3);
        assert_eq!(p, vec![3, 3, 3, 4]);
    }

    #[test]
    fn smaller_w_dags_have_priority_over_larger() {
        // §4: "smaller W-dags have ▷-priority over larger ones".
        for s in 1..5 {
            for t in s..5 {
                let (gs, gt) = (w_dag(s), w_dag(t));
                assert!(has_priority(&gs, &ic_schedule(&gs), &gt, &ic_schedule(&gt)));
                if t > s {
                    assert!(
                        !has_priority(&gt, &ic_schedule(&gt), &gs, &ic_schedule(&gs)),
                        "W_{t} ▷ W_{s} should fail for t > s"
                    );
                }
            }
        }
    }

    #[test]
    fn m_dag_is_dual_shaped() {
        let m3 = m_dag(3);
        assert_eq!(m3.num_sources(), 4);
        assert_eq!(m3.num_sinks(), 3);
        assert!(
            ic_sched::optimal::admits_ic_optimal(&m3).unwrap(),
            "M-dags admit IC-optimal schedules (duality)"
        );
    }

    #[test]
    fn cycle_dag_structure() {
        let c4 = cycle_dag(4);
        assert_eq!(c4.num_nodes(), 8);
        assert_eq!(c4.num_arcs(), 8);
        // Every sink has exactly two parents (the cycle closes).
        for i in 4..8 {
            assert_eq!(c4.in_degree(NodeId(i)), 2);
        }
    }

    #[test]
    fn cycle_dag_cyclic_schedule_is_ic_optimal() {
        for s in 2..6 {
            let g = cycle_dag(s);
            assert!(is_ic_optimal(&g, &ic_schedule(&g)).unwrap(), "C_{s}");
        }
    }

    #[test]
    fn cycle_dag_profile() {
        // E = [s, s-1, ..., s-1, s].
        let g = cycle_dag(4);
        let p = ic_schedule(&g).nonsink_profile(&g);
        assert_eq!(p, vec![4, 3, 3, 3, 4]);
    }

    #[test]
    fn cycle_priority_chain_of_section_7() {
        // C4 ▷ C4 ▷ Λ ▷ Λ.
        let c4 = cycle_dag(4);
        let l = lambda();
        let sc = ic_schedule(&c4);
        let sl = ic_schedule(&l);
        assert!(has_priority(&c4, &sc, &c4, &sc));
        assert!(has_priority(&c4, &sc, &l, &sl));
        assert!(has_priority(&l, &sl, &l, &sl));
    }

    #[test]
    fn vee3_priority_chain_of_section_6() {
        // V3 ▷ V3 ▷ Λ ▷ Λ.
        let v3 = vee_d(3);
        let l = lambda();
        let s3 = ic_schedule(&v3);
        let sl = ic_schedule(&l);
        assert!(has_priority(&v3, &s3, &v3, &s3));
        assert!(has_priority(&v3, &s3, &l, &sl));
    }

    #[test]
    fn every_schedule_optimal_for_stars() {
        for d in 1..5 {
            assert!(every_schedule_ic_optimal(&vee_d(d)).unwrap());
            assert!(every_schedule_ic_optimal(&lambda_d(d)).unwrap());
        }
    }

    #[test]
    fn butterfly_block_schedule_and_priority() {
        let bb = butterfly_block();
        let s = ic_schedule(&bb);
        assert!(is_ic_optimal(&bb, &s).unwrap());
        assert!(has_priority(&bb, &s, &bb, &s)); // B ▷ B (§5.1)
        assert_eq!(s.nonsink_profile(&bb), vec![2, 1, 2]);
    }
}
