//! Wavefront-related computations: out-meshes and in-meshes
//! (§4, Figs. 5–7).
//!
//! The out-mesh is a two-dimensional mesh truncated along its diagonal:
//! a single apex task expands wavefront-by-wavefront, each node feeding
//! its two successors on the next diagonal. The in-mesh (a *pyramid dag*)
//! is its dual. Out-meshes decompose as ▷-linear compositions of W-dags
//! of increasing source counts (Fig. 6), so the diagonal-by-diagonal
//! schedule is IC-optimal; in-meshes follow by duality.
//!
//! Coarsening (Fig. 7) clusters `b × b` blocks of mesh cells: coarse
//! compute grows quadratically in `b` while coarse communication grows
//! only linearly — the economics that make wavefronts IC-friendly.

use std::collections::HashMap;

use ic_dag::{dual, quotient, ChainBuilder, Dag, DagBuilder, NodeId, Quotient};
use ic_sched::{SchedError, Schedule};

use crate::primitives::w_dag;

/// The out-mesh with `levels` diagonals (Fig. 5 left): diagonal `k` has
/// `k + 1` nodes `(r, c)` with `r + c = k`; node `(r, c)` has children
/// `(r + 1, c)` and `(r, c + 1)` when they exist. Ids are
/// diagonal-major: `id(k, r) = k(k+1)/2 + r`, so id order *is* the
/// IC-optimal diagonal schedule.
///
/// ```
/// let m = ic_families::mesh::out_mesh(4);
/// assert_eq!((m.num_nodes(), m.num_sources(), m.num_sinks()), (10, 1, 4));
/// ```
///
/// # Panics
/// Panics if `levels == 0`.
pub fn out_mesh(levels: usize) -> Dag {
    assert!(levels > 0, "a mesh needs at least one diagonal");
    let count = levels * (levels + 1) / 2;
    let mut b = DagBuilder::with_capacity(count);
    for k in 0..levels {
        for r in 0..=k {
            b.add_node(format!("({},{})", r, k - r));
        }
    }
    let id = |k: usize, r: usize| NodeId::new(k * (k + 1) / 2 + r);
    for k in 0..levels.saturating_sub(1) {
        for r in 0..=k {
            // (r, c) -> (r+1, c): index r+1 on diagonal k+1.
            b.add_arc(id(k, r), id(k + 1, r + 1)).expect("valid");
            // (r, c) -> (r, c+1): index r on diagonal k+1.
            b.add_arc(id(k, r), id(k + 1, r)).expect("valid");
        }
    }
    b.build().expect("meshes are acyclic")
}

/// The in-mesh (pyramid dag) with `levels` diagonals: the dual of
/// [`out_mesh`].
pub fn in_mesh(levels: usize) -> Dag {
    dual(&out_mesh(levels))
}

/// The `(r, c)` coordinates of every node of `out_mesh(levels)`,
/// indexed by node id.
pub fn mesh_coords(levels: usize) -> Vec<(usize, usize)> {
    let mut coords = Vec::with_capacity(levels * (levels + 1) / 2);
    for k in 0..levels {
        for r in 0..=k {
            coords.push((r, k - r));
        }
    }
    coords
}

/// The IC-optimal schedule of an out-mesh: diagonal by diagonal, each
/// diagonal's nodes consecutively — id order under our numbering.
pub fn out_mesh_schedule(mesh: &Dag) -> Schedule {
    Schedule::in_id_order(mesh)
}

/// The IC-optimal schedule of an in-mesh, by Theorem 2.2 duality:
/// reverse the packets of the dual out-mesh's diagonal schedule.
pub fn in_mesh_schedule(mesh: &Dag) -> Result<Schedule, SchedError> {
    let out = dual(mesh);
    ic_sched::duality::dual_schedule(&out, &out_mesh_schedule(&out))
}

/// Fig. 6: the out-mesh with `levels` diagonals built as the ▷-linear
/// composition `W_1 ⇑ W_2 ⇑ ... ⇑ W_{levels-1}`. Returns the composite,
/// the per-stage maps, and the stage dags — ready for Theorem 2.1.
///
/// # Panics
/// Panics if `levels < 2` (the decomposition needs at least one W-dag).
pub fn out_mesh_as_w_chain(levels: usize) -> (Dag, Vec<Vec<NodeId>>, Vec<Dag>) {
    assert!(levels >= 2, "W-decomposition needs at least two diagonals");
    let stages: Vec<Dag> = (1..levels).map(w_dag).collect();
    let mut chain = ChainBuilder::new(&stages[0]);
    for s in &stages[1..] {
        chain
            .push_full(s)
            .expect("W_k has k+1 sinks = W_{k+1}'s sources");
    }
    let (dag, maps) = chain.finish();
    (dag, maps, stages)
}

/// The full rectangular mesh of `rows × cols` cells: cell `(r, c)` has
/// children `(r+1, c)` and `(r, c+1)` — the general wavefront array of
/// §4 / \[22\] (our triangular [`out_mesh`] is its corner). Ids are
/// diagonal-major (diagonal `k = r + c`, then increasing `r`), so id
/// order is the wavefront schedule.
///
/// # Panics
/// Panics if either dimension is zero.
pub fn rect_mesh(rows: usize, cols: usize) -> Dag {
    assert!(rows > 0 && cols > 0, "mesh dimensions must be positive");
    let id_map = rect_mesh_ids(rows, cols);
    let mut b = DagBuilder::with_capacity(rows * cols);
    // Create nodes in id order with (r, c) labels.
    let mut by_id: Vec<(usize, usize)> = vec![(0, 0); rows * cols];
    for (r, row) in id_map.iter().enumerate() {
        for (c, &id) in row.iter().enumerate() {
            by_id[id.index()] = (r, c);
        }
    }
    for &(r, c) in &by_id {
        b.add_node(format!("({r},{c})"));
    }
    for r in 0..rows {
        for c in 0..cols {
            if r + 1 < rows {
                b.add_arc(id_map[r][c], id_map[r + 1][c]).expect("valid");
            }
            if c + 1 < cols {
                b.add_arc(id_map[r][c], id_map[r][c + 1]).expect("valid");
            }
        }
    }
    b.build().expect("meshes are acyclic")
}

/// Node ids of [`rect_mesh`] indexed by `(row, col)` — diagonal-major.
pub fn rect_mesh_ids(rows: usize, cols: usize) -> Vec<Vec<NodeId>> {
    let mut ids = vec![vec![NodeId(0); cols]; rows];
    let mut next = 0usize;
    for k in 0..rows + cols - 1 {
        let r_lo = k.saturating_sub(cols - 1);
        let r_hi = k.min(rows - 1);
        for r in r_lo..=r_hi {
            ids[r][k - r] = NodeId::new(next);
            next += 1;
        }
    }
    ids
}

/// The wavefront (diagonal) schedule of a rectangular mesh — id order
/// under our numbering.
pub fn rect_mesh_schedule(mesh: &Dag) -> Schedule {
    Schedule::in_id_order(mesh)
}

/// The dual of Fig. 6: the in-mesh with `levels` diagonals as the
/// ▷-linear composition `M_{levels-1} ⇑ M_{levels-2} ⇑ ... ⇑ M_1` —
/// M-dags of *decreasing* size (by Theorem 2.3, `W_s ▷ W_t` for
/// `s ≤ t` dualizes to `M_t ▷ M_s`, so larger M-dags take priority).
/// Returns the composite, per-stage maps, and the stage dags.
///
/// # Panics
/// Panics if `levels < 2`.
pub fn in_mesh_as_m_chain(levels: usize) -> (Dag, Vec<Vec<NodeId>>, Vec<Dag>) {
    assert!(levels >= 2, "M-decomposition needs at least two diagonals");
    let stages: Vec<Dag> = (1..levels).rev().map(crate::primitives::m_dag).collect();
    let mut chain = ChainBuilder::new(&stages[0]);
    for s in &stages[1..] {
        chain
            .push_full(s)
            .expect("M_k has k sinks = M_{k-1}'s k sources");
    }
    let (dag, maps) = chain.finish();
    (dag, maps, stages)
}

/// Fig. 7: coarsen an out-mesh by clustering cells into `b × b` blocks
/// (cluster of cell `(r, c)` is `(r / b, c / b)`). The quotient of a
/// `levels`-diagonal mesh with `b | levels` is again an out-mesh, with
/// `levels / b` diagonals.
///
/// # Panics
/// Panics if `b == 0`.
pub fn coarsen_mesh(levels: usize, b: usize) -> Quotient {
    assert!(b > 0);
    let mesh = out_mesh(levels);
    let coords = mesh_coords(levels);
    // Assign contiguous cluster ids in diagonal-major order of blocks,
    // which keeps the quotient's id order equal to its diagonal order.
    let mut ids: HashMap<(usize, usize), u32> = HashMap::new();
    let mut assignment = Vec::with_capacity(coords.len());
    let mut blocks: Vec<(usize, usize)> = coords.iter().map(|&(r, c)| (r / b, c / b)).collect();
    let mut ordered: Vec<(usize, usize)> = blocks.clone();
    ordered.sort_by_key(|&(r, c)| (r + c, r));
    ordered.dedup();
    for (i, blk) in ordered.iter().enumerate() {
        ids.insert(*blk, i as u32);
    }
    for blk in blocks.drain(..) {
        assignment.push(ids[&blk]);
    }
    quotient(&mesh, &assignment).expect("block clustering of a mesh is acyclic")
}

/// Per-cluster statistics of a coarsening: `(granularity, cross_arcs)` —
/// the number of fine tasks absorbed (compute volume) and the number of
/// fine arcs crossing the cluster boundary (communication volume).
/// Backs the §4 claim that compute grows quadratically with block
/// sidelength while communication grows only linearly.
pub fn cluster_stats(fine: &Dag, q: &Quotient) -> Vec<(usize, usize)> {
    let mut cross = vec![0usize; q.num_clusters()];
    for (u, v) in fine.arcs() {
        let (cu, cv) = (q.assignment[u.index()], q.assignment[v.index()]);
        if cu != cv {
            cross[cu as usize] += 1;
            cross[cv as usize] += 1;
        }
    }
    q.members
        .iter()
        .zip(cross)
        .map(|(m, x)| (m.len(), x))
        .collect()
}

/// Registered paper claims for wavefront meshes (Figs. 5\u{2013}7, \u{00a7}4):
/// the diagonal schedule, its Theorem 2.2 dual, and the \u{25b7}-linear
/// W-chain decomposition that Theorem 2.1 composes.
pub fn claims() -> Vec<crate::claims::Claim> {
    use crate::claims::{Claim, Guarantee};
    use crate::primitives::{ic_schedule, w_dag};
    let w_chain: Vec<(Dag, Schedule)> = (1..=5)
        .map(|s| {
            let w = w_dag(s);
            let sch = ic_schedule(&w);
            (w, sch)
        })
        .collect();
    let m = out_mesh(5);
    let sm = out_mesh_schedule(&m);
    let im = in_mesh(5);
    let sim = in_mesh_schedule(&im).expect("in-mesh schedule exists");
    let big = out_mesh(40);
    let sbig = out_mesh_schedule(&big);
    vec![
        Claim::new(
            "mesh/out-mesh-5",
            "Figs. 5\u{2013}7, \u{00a7}4",
            "the diagonal-by-diagonal schedule is IC-optimal; the mesh is the \u{25b7}-linear chain W\u{2081} \u{25b7} W\u{2082} \u{25b7} \u{2026}",
            m,
            sm,
            Guarantee::IcOptimal,
        )
        .with_priority_chain(w_chain),
        Claim::new(
            "mesh/in-mesh-5",
            "\u{00a7}4 + Thm 2.2",
            "the packet-reversed diagonal schedule is IC-optimal on the in-mesh",
            im,
            sim,
            Guarantee::IcOptimal,
        ),
        Claim::new(
            "mesh/out-mesh-40",
            "\u{00a7}4",
            "the diagonal schedule stays a valid execution order at scale (820 nodes)",
            big,
            sbig,
            Guarantee::ValidOrder,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_sched::compose_schedule::{linear_composition_schedule, Stage};
    use ic_sched::optimal::{admits_ic_optimal, is_ic_optimal};
    use ic_sched::priority::is_priority_chain;

    #[test]
    fn mesh_counts() {
        let m = out_mesh(4);
        assert_eq!(m.num_nodes(), 10);
        assert_eq!(m.num_sources(), 1);
        assert_eq!(m.num_sinks(), 4);
        assert_eq!(m.num_arcs(), 2 * (1 + 2 + 3));
    }

    #[test]
    fn mesh_degrees() {
        let m = out_mesh(3);
        // Apex has 2 children; interior diagonal nodes 2; last diagonal 0.
        assert_eq!(m.out_degree(NodeId(0)), 2);
        // Middle node of last diagonal has 2 parents; corners have 1.
        assert_eq!(m.in_degree(NodeId(3)), 1);
        assert_eq!(m.in_degree(NodeId(4)), 2);
        assert_eq!(m.in_degree(NodeId(5)), 1);
    }

    #[test]
    fn diagonal_schedule_is_ic_optimal() {
        for levels in 2..=5 {
            let m = out_mesh(levels);
            assert!(
                is_ic_optimal(&m, &out_mesh_schedule(&m)).unwrap(),
                "levels = {levels}"
            );
        }
    }

    #[test]
    fn in_mesh_dual_schedule_is_ic_optimal() {
        for levels in 2..=5 {
            let m = in_mesh(levels);
            let s = in_mesh_schedule(&m).unwrap();
            assert!(is_ic_optimal(&m, &s).unwrap(), "levels = {levels}");
        }
    }

    #[test]
    fn w_chain_reconstructs_the_mesh() {
        for levels in 2..=6 {
            let direct = out_mesh(levels);
            let (composed, _, _) = out_mesh_as_w_chain(levels);
            assert!(
                ic_dag::iso::are_isomorphic(&composed, &direct),
                "levels = {levels}: W-chain must be isomorphic to the mesh"
            );
        }
    }

    #[test]
    fn w_chain_is_priority_linear_and_theorem_2_1_applies() {
        let (composite, maps, stages) = out_mesh_as_w_chain(5);
        let schedules: Vec<Schedule> = stages.iter().map(Schedule::in_id_order).collect();
        let st: Vec<Stage<'_>> = stages
            .iter()
            .zip(&maps)
            .zip(&schedules)
            .map(|((dag, map), schedule)| Stage { dag, map, schedule })
            .collect();
        let pairs: Vec<(&Dag, &Schedule)> = stages.iter().zip(&schedules).collect();
        assert!(is_priority_chain(&pairs), "W_1 ▷ W_2 ▷ ... must hold");
        let sched = linear_composition_schedule(&composite, &st).unwrap();
        assert!(is_ic_optimal(&composite, &sched).unwrap());
    }

    #[test]
    fn rect_mesh_structure() {
        let m = rect_mesh(3, 4);
        assert_eq!(m.num_nodes(), 12);
        // Arcs: down (2*4) + right (3*3).
        assert_eq!(m.num_arcs(), 8 + 9);
        assert_eq!(m.num_sources(), 1);
        assert_eq!(m.num_sinks(), 1);
        assert_eq!(ic_dag::traversal::height(&m), 3 + 4 - 1);
    }

    #[test]
    fn rect_mesh_wavefront_schedule_is_ic_optimal() {
        for (rows, cols) in [(2usize, 2usize), (2, 3), (3, 3), (2, 6), (3, 5)] {
            let m = rect_mesh(rows, cols);
            assert!(
                is_ic_optimal(&m, &rect_mesh_schedule(&m)).unwrap(),
                "{rows}x{cols}"
            );
        }
    }

    #[test]
    fn rect_mesh_degenerate_shapes() {
        // 1 x n is a chain.
        let chain = rect_mesh(1, 5);
        assert_eq!(chain.num_arcs(), 4);
        assert_eq!(ic_dag::traversal::height(&chain), 5);
        // Triangular corner: rect(1,1) is a point.
        assert_eq!(rect_mesh(1, 1).num_nodes(), 1);
    }

    #[test]
    fn rect_mesh_ids_cover_diagonals() {
        let ids = rect_mesh_ids(3, 3);
        // Apex first, anti-diagonal last.
        assert_eq!(ids[0][0], NodeId(0));
        assert_eq!(ids[2][2], NodeId(8));
        // Diagonal k=2 holds ids 3..6.
        let mut diag2: Vec<u32> = vec![ids[0][2].0, ids[1][1].0, ids[2][0].0];
        diag2.sort_unstable();
        assert_eq!(diag2, vec![3, 4, 5]);
    }

    #[test]
    fn m_chain_reconstructs_the_in_mesh() {
        for levels in 2..=6 {
            let direct = in_mesh(levels);
            let (composed, _, _) = in_mesh_as_m_chain(levels);
            assert!(
                ic_dag::iso::are_isomorphic(&composed, &direct),
                "levels = {levels}: M-chain must be isomorphic to the in-mesh"
            );
        }
    }

    #[test]
    fn m_chain_is_priority_linear_and_theorem_2_1_applies() {
        // The dual of the Fig. 6 argument: M_4 ▷ M_3 ▷ M_2 ▷ M_1
        // (larger first, by Theorem 2.3), and the composite schedule is
        // IC-optimal.
        let (composite, maps, stages) = in_mesh_as_m_chain(5);
        let schedules: Vec<Schedule> = stages
            .iter()
            .map(|d| {
                ic_sched::optimal::find_ic_optimal(d)
                    .unwrap()
                    .expect("M-dags admit IC-optimal schedules")
            })
            .collect();
        let pairs: Vec<(&Dag, &Schedule)> = stages.iter().zip(&schedules).collect();
        assert!(is_priority_chain(&pairs), "M_{{s}} ▷ M_{{t}} for s >= t");
        let st: Vec<Stage<'_>> = stages
            .iter()
            .zip(&maps)
            .zip(&schedules)
            .map(|((dag, map), schedule)| Stage { dag, map, schedule })
            .collect();
        let sched = linear_composition_schedule(&composite, &st).unwrap();
        assert!(is_ic_optimal(&composite, &sched).unwrap());
    }

    #[test]
    fn uniform_coarsening_yields_smaller_mesh() {
        let q = coarsen_mesh(6, 2);
        let expected = out_mesh(3);
        assert_eq!(q.dag.num_nodes(), expected.num_nodes());
        assert_eq!(q.dag.num_arcs(), expected.num_arcs());
        assert!(admits_ic_optimal(&q.dag).unwrap());
        // With our diagonal-major cluster numbering the quotient *is*
        // the smaller mesh, arc for arc.
        assert_eq!(q.dag.num_sources(), 1);
        for (u, v) in expected.arcs() {
            assert!(q.dag.has_arc(u, v));
        }
    }

    #[test]
    fn nonuniform_coarsening_still_valid() {
        // b does not divide levels: blocks at the diagonal boundary are
        // ragged but the quotient stays acyclic and schedulable.
        let q = coarsen_mesh(7, 3);
        assert!(admits_ic_optimal(&q.dag).unwrap());
    }

    #[test]
    fn quadratic_compute_linear_communication() {
        // §4: coarse compute ~ b², coarse communication ~ b.
        let levels = 12;
        let fine = out_mesh(levels);
        for b in [2usize, 3, 4] {
            let q = coarsen_mesh(levels, b);
            let stats = cluster_stats(&fine, &q);
            // Interior blocks have granularity exactly b² and boundary
            // arcs exactly 4b (2b in, 2b out).
            let interior: Vec<_> = stats.iter().filter(|&&(g, _)| g == b * b).collect();
            assert!(!interior.is_empty(), "b = {b} should have full blocks");
            for &&(g, x) in &interior {
                assert_eq!(g, b * b);
                assert!(x <= 4 * b, "communication must be linear in b, got {x}");
            }
        }
    }

    #[test]
    fn coords_match_ids() {
        let coords = mesh_coords(4);
        assert_eq!(coords.len(), 10);
        assert_eq!(coords[0], (0, 0));
        assert_eq!(coords[1], (0, 1)); // diagonal 1: r=0 => (0,1)
        assert_eq!(coords[2], (1, 0));
        assert_eq!(coords[9], (3, 0));
    }

    #[test]
    fn single_diagonal_mesh() {
        let m = out_mesh(1);
        assert_eq!(m.num_nodes(), 1);
        assert_eq!(m.num_arcs(), 0);
    }
}
