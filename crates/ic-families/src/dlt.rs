//! The Discrete Laplace Transform dags (§6.2.1, Figs. 13 and 15).
//!
//! Both DLT algorithms accumulate the terms of
//! `y_k(ω) = Σ_i x_i ω^{ik}` with an `n`-source in-tree; they differ in
//! how the powers `ω^{ik}` are generated:
//!
//! * **`L_n`** (Fig. 13 left): an `n`-input parallel-prefix dag `P_n`
//!   generates `⟨1, ω^k, ..., ω^{(n-1)k}⟩`; composite of type
//!   `P_n ⇑ T_n`.
//! * **`L'_n`** (Fig. 15): a *ternary* out-tree built from the 3-prong
//!   Vee dag `V₃` generates the powers; the in-tree's leftmost source
//!   (the `x_0 · ω^0` term) stays free. The chain
//!   `V₃ ▷ V₃ ▷ Λ ▷ Λ` makes it ▷-linear.
//!
//! Coarsened variants (Fig. 13 right) collapse leaf-level `Λ`s with
//! their merged prefix outputs, or a whole half of the in-tree.

use ic_dag::{compose, compose_full, quotient, Dag, NodeId, Quotient};
use ic_sched::compose_schedule::{linear_composition_schedule, Stage};
use ic_sched::{SchedError, Schedule};

use crate::prefix::{parallel_prefix, prefix_schedule};
use crate::trees::{complete_in_tree, in_tree_schedule, out_tree_from_parents, out_tree_schedule};

/// A DLT dag with provenance into its two stages.
#[derive(Debug, Clone)]
pub struct DltDag {
    /// The composite dag.
    pub dag: Dag,
    /// The generator stage (a `P_n`, or the `V₃` out-tree for `L'_n`).
    pub generator: Dag,
    /// Map from generator node ids to composite ids.
    pub generator_map: Vec<NodeId>,
    /// The accumulation in-tree `T_n`.
    pub tree: Dag,
    /// Map from in-tree node ids to composite ids.
    pub tree_map: Vec<NodeId>,
    /// The number of inputs `n`.
    pub n: usize,
}

fn log2_exact(n: usize) -> Option<usize> {
    (n >= 2 && n.is_power_of_two()).then(|| n.trailing_zeros() as usize)
}

/// The DLT dag `L_n` of Fig. 13 (left): `P_n ⇑ T_n`, merging the prefix
/// outputs with the accumulation tree's sources, left to right.
///
/// # Panics
/// Panics unless `n` is a power of two, `n >= 2`.
pub fn dlt_prefix(n: usize) -> DltDag {
    let p = log2_exact(n).expect("n must be a power of two >= 2");
    let gen = parallel_prefix(n);
    let tree = complete_in_tree(2, p);
    let c = compose_full(&gen, &tree).expect("P_n has n sinks; T_n has n sources");
    DltDag {
        dag: c.dag,
        generator: gen,
        generator_map: c.left_map,
        tree,
        tree_map: c.right_map,
        n,
    }
}

impl DltDag {
    /// The §6.2.1 IC-optimal schedule: execute the generator stage
    /// IC-optimally, then the in-tree IC-optimally (Theorem 2.1 over
    /// `N ... N Λ ... Λ` resp. `V₃ ... V₃ Λ ... Λ`).
    pub fn ic_schedule(&self) -> Result<Schedule, SchedError> {
        let gen_sched = if self.generator.num_sources() == 1 {
            // The V₃ out-tree generator: any schedule.
            out_tree_schedule(&self.generator)
        } else {
            prefix_schedule(self.n)
        };
        let tree_sched = in_tree_schedule(&self.tree)?;
        let stages = [
            Stage {
                dag: &self.generator,
                map: &self.generator_map,
                schedule: &gen_sched,
            },
            Stage {
                dag: &self.tree,
                map: &self.tree_map,
                schedule: &tree_sched,
            },
        ];
        linear_composition_schedule(&self.dag, &stages)
    }

    /// Fig. 13 (right)-style coarsening: collapse each leaf-level `Λ` of
    /// the accumulation tree together with its two merged generator
    /// outputs into one coarse task.
    pub fn coarsen_leaf_pairs(&self) -> Result<Quotient, SchedError> {
        let nfine = self.dag.num_nodes();
        let mut cluster = vec![usize::MAX; nfine];
        let mut next = 0usize;
        // In-tree leaves (sources) come in sibling pairs feeding one
        // internal node; group (leaf, leaf, parent-in-tree-node).
        for v in self.tree.node_ids() {
            let parents = self.tree.parents(v);
            if parents.len() == 2 && parents.iter().all(|&p| self.tree.is_source(p)) {
                for &u in parents {
                    cluster[self.tree_map[u.index()].index()] = next;
                }
                cluster[self.tree_map[v.index()].index()] = next;
                next += 1;
            }
        }
        for c in cluster.iter_mut() {
            if *c == usize::MAX {
                *c = next;
                next += 1;
            }
        }
        let assignment: Vec<u32> = cluster.iter().map(|&c| c as u32).collect();
        quotient(&self.dag, &assignment).map_err(SchedError::Dag)
    }

    /// Collapse the right half of the accumulation in-tree (everything
    /// strictly under the root's right child) into one coarse task —
    /// the "righthand portion of the in-tree cannot be executed until
    /// its sources have been executed" construction of §6.2.1.
    pub fn coarsen_right_half(&self) -> Result<Quotient, SchedError> {
        // The tree's sink is the root; its parents are the two halves.
        let root = self
            .tree
            .sinks()
            .next()
            .ok_or(SchedError::InvalidSchedule)?;
        let halves = self.tree.parents(root);
        let right = *halves.last().ok_or(SchedError::InvalidSchedule)?;
        // All tree nodes that reach `right` (its whole subtree).
        let members = ic_dag::traversal::ancestors_of(&self.tree, right);
        let nfine = self.dag.num_nodes();
        let mut cluster = vec![usize::MAX; nfine];
        for (u, &m) in members.iter().enumerate() {
            if m {
                cluster[self.tree_map[u].index()] = 0;
            }
        }
        let mut next = 1usize;
        for c in cluster.iter_mut() {
            if *c == usize::MAX {
                *c = next;
                next += 1;
            }
        }
        let assignment: Vec<u32> = cluster.iter().map(|&c| c as u32).collect();
        quotient(&self.dag, &assignment).map_err(SchedError::Dag)
    }
}

/// Build a ternary out-tree with exactly `leaves` leaves (`leaves` odd,
/// `>= 1`) by repeatedly expanding the leftmost expandable leaf into a
/// `V₃` — the §6.2.1 power-generation tree.
///
/// # Panics
/// Panics unless `leaves` is odd.
pub fn ternary_out_tree(leaves: usize) -> Dag {
    assert!(
        leaves >= 1 && leaves % 2 == 1,
        "a ternary tree has an odd leaf count"
    );
    let mut parents: Vec<Option<usize>> = vec![None];
    let mut leaf_count = 1usize;
    let mut expand_next = 0usize;
    while leaf_count < leaves {
        // Expand node `expand_next` (currently a leaf) with 3 children.
        for _ in 0..3 {
            parents.push(Some(expand_next));
        }
        leaf_count += 2;
        expand_next += 1;
    }
    out_tree_from_parents(&parents).expect("valid ternary construction")
}

/// The alternative DLT dag `L'_n` of Fig. 15: a ternary out-tree with
/// `n - 1` leaves feeds the accumulation tree's sources `1..n`; source
/// `0` (the `x_0` term, multiplied by `ω^0 = 1`) remains a free source.
///
/// # Panics
/// Panics unless `n` is a power of two, `n >= 2`.
pub fn dlt_vee3(n: usize) -> DltDag {
    let p = log2_exact(n).expect("n must be a power of two >= 2");
    let gen = ternary_out_tree(n - 1);
    let tree = complete_in_tree(2, p);
    let gen_sinks: Vec<NodeId> = gen.sinks().collect();
    let tree_sources: Vec<NodeId> = tree.sources().collect();
    debug_assert_eq!(gen_sinks.len(), tree_sources.len() - 1);
    let pairing: Vec<(NodeId, NodeId)> = gen_sinks
        .into_iter()
        .zip(tree_sources.into_iter().skip(1))
        .collect();
    let c = compose(&gen, &tree, &pairing).expect("valid pairing");
    DltDag {
        dag: c.dag,
        generator: gen,
        generator_map: c.left_map,
        tree,
        tree_map: c.right_map,
        n,
    }
}

/// Registered paper claims for the Discrete Laplace Transform dags
/// (Figs. 13 and 15, \u{00a7}6.2.1).
pub fn claims() -> Vec<crate::claims::Claim> {
    use crate::claims::{Claim, Guarantee};
    use crate::primitives::{ic_schedule, lambda, vee_d};
    let l4 = dlt_prefix(4);
    let sl4 = l4.ic_schedule().expect("L_4 schedule exists");
    let lp4 = dlt_vee3(4);
    let slp4 = lp4.ic_schedule().expect("L'_4 schedule exists");
    let v3_chain: Vec<(Dag, Schedule)> = vec![vee_d(3), vee_d(3), lambda(), lambda()]
        .into_iter()
        .map(|g| {
            let s = ic_schedule(&g);
            (g, s)
        })
        .collect();
    vec![
        Claim::new(
            "dlt/l-4",
            "Fig. 13, \u{00a7}6.2.1",
            "the prefix-then-accumulate schedule of L\u{2084} is IC-optimal",
            l4.dag,
            sl4,
            Guarantee::IcOptimal,
        ),
        Claim::new(
            "dlt/l-prime-4",
            "Fig. 15, \u{00a7}6.2.1",
            "the V\u{2083}-built variant L'\u{2084} is IC-optimal; V\u{2083} \u{25b7} V\u{2083} \u{25b7} \u{039b} \u{25b7} \u{039b}",
            lp4.dag,
            slp4,
            Guarantee::IcOptimal,
        )
        .with_priority_chain(v3_chain),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitives::{ic_schedule, lambda, vee_d};
    use ic_sched::optimal::{admits_ic_optimal, is_ic_optimal};
    use ic_sched::priority::has_priority;

    #[test]
    fn l8_counts() {
        let l8 = dlt_prefix(8);
        // P_8 (32) + in-tree (15) - 8 merged = 39.
        assert_eq!(l8.dag.num_nodes(), 39);
        assert_eq!(l8.dag.num_sources(), 8);
        assert_eq!(l8.dag.num_sinks(), 1);
    }

    #[test]
    fn l4_schedule_is_ic_optimal() {
        let l4 = dlt_prefix(4);
        // P_4 (12) + T_4 (7) - 4 = 15 nodes: exhaustively checkable.
        assert_eq!(l4.dag.num_nodes(), 15);
        let s = l4.ic_schedule().unwrap();
        assert!(is_ic_optimal(&l4.dag, &s).unwrap());
    }

    #[test]
    fn l8_schedule_is_valid_topological() {
        let l8 = dlt_prefix(8);
        let s = l8.ic_schedule().unwrap();
        assert!(ic_dag::traversal::is_topological(&l8.dag, s.order()));
    }

    #[test]
    fn coarsened_l4_leaf_pairs() {
        let l4 = dlt_prefix(4);
        let q = l4.coarsen_leaf_pairs().unwrap();
        // Two leaf-level Λs, each absorbing 3 nodes: 15 - 2*2 = 11.
        assert_eq!(q.dag.num_nodes(), 11);
        assert!(admits_ic_optimal(&q.dag).unwrap());
    }

    #[test]
    fn coarsened_l4_right_half() {
        let l4 = dlt_prefix(4);
        let q = l4.coarsen_right_half().unwrap();
        // Right half of T_4 = right leaf-Λ (2 leaves + 1 internal): those
        // 3 fine nodes fuse into 1: 15 - 2 = 13.
        assert_eq!(q.dag.num_nodes(), 13);
        assert!(admits_ic_optimal(&q.dag).unwrap());
    }

    #[test]
    fn ternary_tree_shapes() {
        let t1 = ternary_out_tree(1);
        assert_eq!(t1.num_nodes(), 1);
        let t3 = ternary_out_tree(3);
        assert_eq!(t3.num_nodes(), 4); // V₃
        let t7 = ternary_out_tree(7);
        assert_eq!(t7.num_nodes(), 10); // root + 3 + expansion of child: 1+3+3+3
        assert_eq!(t7.num_sinks(), 7);
        assert!(crate::trees::is_out_tree(&t7));
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_leaf_count_panics() {
        let _ = ternary_out_tree(4);
    }

    #[test]
    fn l_prime_8_counts() {
        let lp = dlt_vee3(8);
        // Ternary tree with 7 leaves (10 nodes) + T_8 (15) - 7 merged = 18.
        assert_eq!(lp.dag.num_nodes(), 18);
        // Sources: the tree root and the free x0 source.
        assert_eq!(lp.dag.num_sources(), 2);
        assert_eq!(lp.dag.num_sinks(), 1);
    }

    #[test]
    fn l_prime_4_schedule_is_ic_optimal() {
        let lp = dlt_vee3(4);
        // V₃ (4) + T_4 (7) - 3 = 8 nodes.
        assert_eq!(lp.dag.num_nodes(), 8);
        let s = lp.ic_schedule().unwrap();
        assert!(is_ic_optimal(&lp.dag, &s).unwrap());
    }

    #[test]
    fn l_prime_8_schedule_is_valid() {
        let lp = dlt_vee3(8);
        let s = lp.ic_schedule().unwrap();
        assert!(ic_dag::traversal::is_topological(&lp.dag, s.order()));
    }

    #[test]
    fn section_6_priority_chain() {
        // V₃ ▷ V₃ ▷ Λ ▷ Λ (the §6.2.1 validation chain for L'_n).
        let v3 = vee_d(3);
        let l = lambda();
        let (s3, sl) = (ic_schedule(&v3), ic_schedule(&l));
        assert!(has_priority(&v3, &s3, &v3, &s3));
        assert!(has_priority(&v3, &s3, &l, &sl));
        assert!(has_priority(&l, &sl, &l, &sl));
    }
}
