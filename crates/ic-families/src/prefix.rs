//! The parallel-prefix (scan) dag `P_n` (§6.1, Figs. 11–12).
//!
//! `P_n` represents the `O(log n)`-step scan algorithm
//!
//! ```text
//! for j = 0 to floor(log2(n-1)):
//!     for i = 2^j to n-1, in parallel:  x[i] <- x[i - 2^j] * x[i]
//! ```
//!
//! as a dag with one node per cell per step-row: row `j`, cell `i` feeds
//! row `j+1` cells `i` (pass-through / left operand) and `i + 2^j`
//! (right operand), when in range. `P_n` is an iterated composition of
//! N-dags — row `j` to row `j+1` splits into `2^j` interleaved copies of
//! `N_{⌈(n-offset)/2^j⌉}`-ish N-dags (Fig. 12: `P_8 = N_8 ⇑ N_4 ⇑ N_4 ⇑
//! N_2 ⇑ N_2 ⇑ N_2 ⇑ N_2`) — and `N_s ▷ N_t` for all `s, t`, so any
//! schedule executing the constituent N-dags one after another (in
//! nonincreasing source order) is IC-optimal.

use ic_dag::{ChainBuilder, Dag, DagBuilder, NodeId};
use ic_sched::Schedule;

use crate::primitives::n_dag;

/// Number of step-rows of `P_n` (including the input row): for `n >= 2`,
/// `floor(log2(n-1)) + 2`; a single-input scan is one node.
pub fn prefix_rows(n: usize) -> usize {
    assert!(n >= 1);
    if n == 1 {
        return 1;
    }
    let jmax = usize::BITS as usize - 1 - (n - 1).leading_zeros() as usize;
    jmax + 2
}

/// Node id of row `j`, cell `i` in `parallel_prefix(n)`: row-major.
pub fn prefix_id(n: usize, row: usize, cell: usize) -> NodeId {
    NodeId::new(row * n + cell)
}

/// The `n`-input parallel-prefix dag `P_n` (Fig. 11).
///
/// ```
/// let p8 = ic_families::prefix::parallel_prefix(8);
/// assert_eq!((p8.num_nodes(), p8.num_arcs()), (32, 41));
/// ```
///
/// # Panics
/// Panics if `n == 0`.
pub fn parallel_prefix(n: usize) -> Dag {
    let rows = prefix_rows(n);
    let mut b = DagBuilder::with_capacity(rows * n);
    for j in 0..rows {
        for i in 0..n {
            b.add_node(format!("x{i}@{j}"));
        }
    }
    for j in 0..rows - 1 {
        let shift = 1usize << j;
        for i in 0..n {
            let u = prefix_id(n, j, i);
            // Value x_i flows to row j+1 cell i (as left/pass value)...
            b.add_arc(u, prefix_id(n, j + 1, i)).expect("valid");
            // ...and combines into cell i + 2^j, if that cell is updated.
            if i + shift < n {
                b.add_arc(u, prefix_id(n, j + 1, i + shift)).expect("valid");
            }
        }
    }
    b.build().expect("prefix dags are acyclic")
}

/// The §6.1 IC-optimal schedule for `P_n`: the constituent N-dags in
/// nonincreasing order of source count — row by row, and within a row
/// each parity-class N-dag completely (anchored, left to right) before
/// the next.
pub fn prefix_schedule(n: usize) -> Schedule {
    let rows = prefix_rows(n);
    let mut order = Vec::with_capacity(rows * n);
    for j in 0..rows - 1 {
        let stride = 1usize << j;
        // Row j splits into `stride` interleaved N-dags by residue class;
        // execute each class fully, anchored at its leftmost cell.
        for class in 0..stride.min(n) {
            let mut i = class;
            while i < n {
                order.push(prefix_id(n, j, i));
                i += stride;
            }
        }
    }
    // The last row: all sinks, any order.
    for i in 0..n {
        order.push(prefix_id(n, rows - 1, i));
    }
    Schedule::new_unchecked(order)
}

/// Fig. 12: `P_n` as an explicit chain of N-dags via the composition
/// machinery. Returns the composite, per-stage maps, and stage dags.
/// For `n = 8` the stages are `N_8, N_4, N_4, N_2, N_2, N_2, N_2`.
pub fn prefix_as_n_chain(n: usize) -> (Dag, Vec<Vec<NodeId>>, Vec<Dag>) {
    assert!(n >= 2, "the N-dag decomposition needs at least two inputs");
    let rows = prefix_rows(n);
    // composite id of (row, cell).
    let mut cid: Vec<Vec<Option<NodeId>>> = vec![vec![None; n]; rows];
    let mut chain: Option<ChainBuilder> = None;
    let mut stages: Vec<Dag> = Vec::new();
    for j in 0..rows - 1 {
        let stride = 1usize << j;
        for class in 0..stride.min(n) {
            let cells: Vec<usize> = (class..n).step_by(stride).collect();
            let s = cells.len();
            let nd = n_dag(s);
            // Pair the N-dag's sources (ids 0..s) with existing composite
            // nodes for row j's cells of this class.
            let mut pairing = Vec::new();
            for (k, &cell) in cells.iter().enumerate() {
                if let Some(existing) = cid[j][cell] {
                    pairing.push((existing, NodeId::new(k)));
                }
            }
            match chain.as_mut() {
                None => chain = Some(ChainBuilder::new(&nd)),
                Some(c) => c.push(&nd, &pairing).expect("valid by construction"),
            }
            let c = chain.as_ref().expect("created above");
            let map = c.stage_map(stages.len());
            for (k, &cell) in cells.iter().enumerate() {
                cid[j][cell] = Some(map[k]); // source k
                cid[j + 1][cell] = Some(map[s + k]); // sink k
            }
            stages.push(nd);
        }
    }
    let (dag, maps) = chain.expect("n >= 2").finish();
    (dag, maps, stages)
}

/// The per-row N-dag source counts of the Fig. 12 decomposition, in
/// stage order — e.g. `[8, 4, 4, 2, 2, 2, 2]` for `n = 8`.
pub fn n_dag_sizes(n: usize) -> Vec<usize> {
    assert!(n >= 2);
    let rows = prefix_rows(n);
    let mut sizes = Vec::new();
    for j in 0..rows - 1 {
        let stride = 1usize << j;
        for class in 0..stride.min(n) {
            sizes.push((n - class).div_ceil(stride));
        }
    }
    sizes
}

/// Registered paper claims for parallel-prefix dags (Figs. 11\u{2013}12,
/// \u{00a7}6.1): the row-by-row N-dag schedule is IC-optimal, and the
/// constituent N-dags form a \u{25b7}-chain (Fact 1 of \u{00a7}6.2.1).
pub fn claims() -> Vec<crate::claims::Claim> {
    use crate::claims::{Claim, Guarantee};
    use crate::primitives::{ic_schedule, n_dag};
    let n_chain: Vec<(Dag, Schedule)> = [3usize, 2, 1]
        .into_iter()
        .map(|s| {
            let g = n_dag(s);
            let sch = ic_schedule(&g);
            (g, sch)
        })
        .collect();
    vec![
        Claim::new(
            "prefix/p-4",
            "Figs. 11\u{2013}12, \u{00a7}6.1",
            "the N-dag row schedule of P\u{2084} is IC-optimal; N_s \u{25b7} N_t for all s, t",
            parallel_prefix(4),
            prefix_schedule(4),
            Guarantee::IcOptimal,
        )
        .with_priority_chain(n_chain),
        Claim::new(
            "prefix/p-64",
            "\u{00a7}6.1",
            "the N-dag row schedule stays a valid execution order at scale (448 nodes)",
            parallel_prefix(64),
            prefix_schedule(64),
            Guarantee::ValidOrder,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_sched::optimal::is_ic_optimal;
    use ic_sched::priority::is_priority_chain;

    #[test]
    fn p8_counts() {
        let p = parallel_prefix(8);
        assert_eq!(p.num_nodes(), 32); // 4 rows of 8
        assert_eq!(p.num_sources(), 8);
        assert_eq!(p.num_sinks(), 8);
        // Arcs: per row 0..2: n pass arcs + (n - 2^j) combine arcs.
        assert_eq!(p.num_arcs(), (8 + 7) + (8 + 6) + (8 + 4));
    }

    #[test]
    fn decomposition_sizes_match_fig_12() {
        assert_eq!(n_dag_sizes(8), vec![8, 4, 4, 2, 2, 2, 2]);
        assert_eq!(n_dag_sizes(4), vec![4, 2, 2]);
    }

    #[test]
    fn n_chain_reconstructs_prefix_dag() {
        for n in [2usize, 3, 4, 8] {
            let direct = parallel_prefix(n);
            let (composed, _, stages) = prefix_as_n_chain(n);
            assert_eq!(
                stages.len(),
                n_dag_sizes(n).len(),
                "stage count for n = {n}"
            );
            assert!(
                ic_dag::iso::are_isomorphic(&composed, &direct),
                "n = {n}: N-chain must be isomorphic to P_n"
            );
        }
    }

    #[test]
    fn prefix_schedule_is_valid() {
        for n in [2usize, 3, 4, 5, 8, 16] {
            let p = parallel_prefix(n);
            let s = prefix_schedule(n);
            assert!(ic_dag::traversal::is_topological(&p, s.order()), "n = {n}");
        }
    }

    #[test]
    fn prefix_schedule_is_ic_optimal_small() {
        for n in [2usize, 3, 4] {
            let p = parallel_prefix(n);
            assert!(is_ic_optimal(&p, &prefix_schedule(n)).unwrap(), "n = {n}");
        }
    }

    #[test]
    fn n_dag_stages_form_priority_chain() {
        // N_s ▷ N_t for all s, t — so the stage sequence is ▷-linear in
        // any order; check the actual nonincreasing order.
        let (_, _, stages) = prefix_as_n_chain(8);
        let schedules: Vec<Schedule> = stages.iter().map(Schedule::in_id_order).collect();
        let pairs: Vec<(&Dag, &Schedule)> = stages.iter().zip(&schedules).collect();
        assert!(is_priority_chain(&pairs));
    }

    #[test]
    fn theorem_2_1_schedule_on_p4_is_ic_optimal() {
        use ic_sched::compose_schedule::{linear_composition_schedule, Stage};
        let (composite, maps, stages) = prefix_as_n_chain(4);
        let schedules: Vec<Schedule> = stages.iter().map(Schedule::in_id_order).collect();
        let st: Vec<Stage<'_>> = stages
            .iter()
            .zip(&maps)
            .zip(&schedules)
            .map(|((dag, map), schedule)| Stage { dag, map, schedule })
            .collect();
        let sched = linear_composition_schedule(&composite, &st).unwrap();
        assert!(is_ic_optimal(&composite, &sched).unwrap());
    }

    #[test]
    fn rows_formula() {
        assert_eq!(prefix_rows(1), 1);
        assert_eq!(prefix_rows(2), 2);
        assert_eq!(prefix_rows(3), 3);
        assert_eq!(prefix_rows(4), 3);
        assert_eq!(prefix_rows(5), 4);
        assert_eq!(prefix_rows(8), 4);
        assert_eq!(prefix_rows(9), 5);
        assert_eq!(prefix_rows(16), 5);
    }

    #[test]
    fn single_input_prefix() {
        let p = parallel_prefix(1);
        assert_eq!(p.num_nodes(), 1);
        assert_eq!(p.num_arcs(), 0);
    }
}
