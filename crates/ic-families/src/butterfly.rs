//! Butterfly-structured computations (§5, Figs. 8–10).
//!
//! The `d`-dimensional butterfly network `B_d` has `d + 1` levels of
//! `2^d` rows; between levels `l` and `l + 1`, rows `r` and
//! `r ^ bit(l)` (where `bit(l) = 1 << (d - 1 - l)`) form a butterfly
//! building block. `B_d` is an iterated composition of the block `B`,
//! `B ▷ B` holds, so Theorem 2.1 applies; moreover a schedule is
//! IC-optimal **iff** it executes the two sources of each block copy in
//! consecutive steps (§5.1).
//!
//! Granularity: grouping `b` consecutive levels and fixing the bits
//! those levels do not touch partitions `B_d` into clusters whose
//! quotient is the radix-`2^b` butterfly — the practical form of the
//! `B_{a+b} ≅ B_a`-of-`B_b` decomposition the paper cites from \[1\].

use ic_dag::{quotient, ChainBuilder, Dag, DagBuilder, NodeId, Quotient};
use ic_sched::{SchedError, Schedule};

use crate::primitives::butterfly_block;

/// Node id of `(level, row)` in `butterfly(d)`: level-major.
pub fn butterfly_id(d: usize, level: usize, row: usize) -> NodeId {
    NodeId::new(level * (1 << d) + row)
}

/// The `d`-dimensional butterfly network `B_d` (Fig. 9): `(d+1) * 2^d`
/// nodes; node `(l, r)` for `l < d` has arcs to `(l+1, r)` and
/// `(l+1, r ^ (1 << (d-1-l)))`.
///
/// # Panics
/// Panics if `d == 0` (use [`butterfly_block`] for `B_1`) — no: `d >= 1`
/// is required and `butterfly(1)` equals the building block's shape.
pub fn butterfly(d: usize) -> Dag {
    assert!(d >= 1, "butterfly dimension must be at least 1");
    let rows = 1usize << d;
    let mut b = DagBuilder::with_capacity((d + 1) * rows);
    for l in 0..=d {
        for r in 0..rows {
            b.add_node(format!("({l},{r})"));
        }
    }
    for l in 0..d {
        let bit = 1usize << (d - 1 - l);
        for r in 0..rows {
            let u = butterfly_id(d, l, r);
            b.add_arc(u, butterfly_id(d, l + 1, r)).expect("valid");
            b.add_arc(u, butterfly_id(d, l + 1, r ^ bit))
                .expect("valid");
        }
    }
    b.build().expect("butterflies are acyclic")
}

/// The §5.1 IC-optimal schedule for `B_d`: level by level; within each
/// level, the two sources of every block consecutively (partner rows
/// adjacent). The final level (all sinks) is executed in row order.
pub fn butterfly_schedule(d: usize) -> Schedule {
    let rows = 1usize << d;
    let mut order = Vec::with_capacity((d + 1) * rows);
    for l in 0..d {
        let bit = 1usize << (d - 1 - l);
        for r in 0..rows {
            if r & bit == 0 {
                order.push(butterfly_id(d, l, r));
                order.push(butterfly_id(d, l, r | bit));
            }
        }
    }
    for r in 0..rows {
        order.push(butterfly_id(d, d, r));
    }
    Schedule::new_unchecked(order)
}

/// Check the §5.1 characterization: does `schedule` execute the two
/// sources of every block copy of `B_d` in consecutive steps?
pub fn executes_block_pairs_consecutively(d: usize, schedule: &Schedule) -> bool {
    let rows = 1usize << d;
    let mut pos = vec![0usize; (d + 1) * rows];
    for (i, &v) in schedule.order().iter().enumerate() {
        pos[v.index()] = i;
    }
    for l in 0..d {
        let bit = 1usize << (d - 1 - l);
        for r in 0..rows {
            if r & bit == 0 {
                let a = pos[butterfly_id(d, l, r).index()];
                let b = pos[butterfly_id(d, l, r | bit).index()];
                if a.abs_diff(b) != 1 {
                    return false;
                }
            }
        }
    }
    true
}

/// Fig. 10: build `B_d` as an iterated composition of butterfly building
/// blocks (layer-0 blocks summed in, later layers merged source-to-sink).
/// Returns the composite, per-block maps, and the block dags (all equal
/// to [`butterfly_block`]) — ready for Theorem 2.1.
pub fn butterfly_as_block_chain(d: usize) -> (Dag, Vec<Vec<NodeId>>, Vec<Dag>) {
    assert!(d >= 1);
    let rows = 1usize << d;
    let block = butterfly_block();
    // composite_of[l][r] = composite id of butterfly node (l, r).
    let mut composite_of: Vec<Vec<Option<NodeId>>> = vec![vec![None; rows]; d + 1];
    let mut chain: Option<ChainBuilder> = None;
    let mut count = 0usize;
    for l in 0..d {
        let bit = 1usize << (d - 1 - l);
        for r in 0..rows {
            if r & bit != 0 {
                continue;
            }
            let r2 = r | bit;
            // Pair the block's sources (ids 0, 1) with existing composite
            // nodes for (l, r) and (l, r2), if already created.
            let mut pairing = Vec::new();
            if let Some(cid) = composite_of[l][r] {
                pairing.push((cid, NodeId(0)));
            }
            if let Some(cid) = composite_of[l][r2] {
                pairing.push((cid, NodeId(1)));
            }
            match chain.as_mut() {
                None => {
                    chain = Some(ChainBuilder::new(&block));
                }
                Some(c) => {
                    c.push(&block, &pairing)
                        .expect("sinks/sources by construction");
                }
            }
            count += 1;
            let c = chain.as_ref().expect("just created");
            let map = c.stage_map(count - 1);
            composite_of[l][r] = Some(map[0]);
            composite_of[l][r2] = Some(map[1]);
            composite_of[l + 1][r] = Some(map[2]);
            composite_of[l + 1][r2] = Some(map[3]);
        }
    }
    let (dag, maps) = chain.expect("d >= 1 creates blocks").finish();
    let blocks = vec![block; maps.len()];
    (dag, maps, blocks)
}

/// Granularity decomposition (Fig. 10 / §5.1): group the `d` block
/// layers into `d / b` bands of `b` layers (the final node level joins
/// the last band) and fix the `d - b` row bits a band does not touch.
/// Each cluster induces a radix-2 sub-butterfly of `b` levels; the
/// quotient is the radix-`2^b` butterfly of dimension `d / b`.
///
/// # Panics
/// Panics unless `b >= 1` and `b` divides `d`.
pub fn coarsen_butterfly(d: usize, b: usize) -> Quotient {
    assert!(b >= 1 && d.is_multiple_of(b), "b must divide d");
    let rows = 1usize << d;
    let bands = d / b;
    let fine = butterfly(d);
    // Band k touches levels k*b .. (k+1)*b - 1, i.e. bits
    // d-1-(k*b) down to d-(k+1)*b. The last band also absorbs level d.
    let band_of_level = |l: usize| if l == d { bands - 1 } else { l / b };
    let mut assignment = Vec::with_capacity((d + 1) * rows);
    // Contiguous cluster ids: (band, fixed-bits index) lexicographic.
    let fixed_count = 1usize << (d - b);
    for l in 0..=d {
        let k = band_of_level(l);
        // The band's movable bits: a contiguous bit range.
        let hi = d - k * b; // exclusive
        let lo = d - (k + 1) * b; // inclusive
        for r in 0..rows {
            // Remove bits lo..hi from r to get the fixed-bits index.
            let low_part = r & ((1usize << lo) - 1);
            let high_part = r >> hi;
            let fixed = (high_part << lo) | low_part;
            assignment.push((k * fixed_count + fixed) as u32);
        }
    }
    quotient(&fine, &assignment).expect("band clustering is acyclic")
}

/// Node id of `(level, row)` in [`radix_butterfly`]: level-major over
/// `r^d` rows.
pub fn radix_id(r: usize, d: usize, level: usize, row: usize) -> NodeId {
    NodeId::new(level * r.pow(d as u32) + row)
}

/// The radix-`r` butterfly of dimension `d`: `d + 1` levels of `r^d`
/// rows; between levels `l` and `l+1`, the `r` rows agreeing on every
/// base-`r` digit except digit `d-1-l` form a complete bipartite
/// `K_{r,r}` block (the degree-`r` generalization of the building block
/// `B`). `radix_butterfly(2, d)` is `B_d`; the band coarsening of `B_d`
/// (`coarsen_butterfly(d, b)`) is isomorphic to
/// `radix_butterfly(2^b, d/b - 1)` — the precise form of the Fig. 10
/// granularity statement.
///
/// # Panics
/// Panics unless `r >= 2`.
pub fn radix_butterfly(r: usize, d: usize) -> Dag {
    assert!(r >= 2, "radix must be at least 2");
    let rows = r.pow(d as u32);
    let mut b = DagBuilder::with_capacity((d + 1) * rows);
    for l in 0..=d {
        for row in 0..rows {
            b.add_node(format!("({l},{row})"));
        }
    }
    for l in 0..d {
        let weight = r.pow((d - 1 - l) as u32);
        for row in 0..rows {
            let digit = row / weight % r;
            let base = row - digit * weight;
            let u = radix_id(r, d, l, row);
            for k in 0..r {
                b.add_arc(u, radix_id(r, d, l + 1, base + k * weight))
                    .expect("valid");
            }
        }
    }
    b.build().expect("butterflies are acyclic")
}

/// The paired (grouped) schedule for the radix-`r` butterfly: level by
/// level, each `K_{r,r}` block's `r` sources consecutively; the final
/// level in row order.
pub fn radix_butterfly_schedule(r: usize, d: usize) -> Schedule {
    let rows = r.pow(d as u32);
    let mut order = Vec::with_capacity((d + 1) * rows);
    for l in 0..d {
        let weight = r.pow((d - 1 - l) as u32);
        for row in 0..rows {
            let digit = row / weight % r;
            if digit == 0 {
                for k in 0..r {
                    order.push(radix_id(r, d, l, row + k * weight));
                }
            }
        }
    }
    for row in 0..rows {
        order.push(radix_id(r, d, d, row));
    }
    Schedule::new_unchecked(order)
}

/// An IC-optimal schedule for `B_d` by the Theorem 2.1 machinery over
/// the block decomposition — provided both as a second construction of
/// the §5.1 schedule and as a test oracle.
pub fn butterfly_schedule_via_blocks(d: usize) -> Result<Schedule, SchedError> {
    use ic_sched::compose_schedule::{linear_composition_schedule, Stage};
    let (composite, maps, blocks) = butterfly_as_block_chain(d);
    let block_sched = Schedule::in_id_order(&blocks[0]);
    let stages: Vec<Stage<'_>> = blocks
        .iter()
        .zip(&maps)
        .map(|(dag, map)| Stage {
            dag,
            map,
            schedule: &block_sched,
        })
        .collect();
    linear_composition_schedule(&composite, &stages)
}

/// Registered paper claims for butterfly networks (Figs. 9\u{2013}10, \u{00a7}5.1):
/// level-by-level scheduling is IC-optimal, built from B \u{25b7} B blocks.
pub fn claims() -> Vec<crate::claims::Claim> {
    use crate::claims::{Claim, Guarantee};
    use crate::primitives::{butterfly_block, ic_schedule};
    let block_chain: Vec<(Dag, Schedule)> = (0..2)
        .map(|_| {
            let b = butterfly_block();
            let s = ic_schedule(&b);
            (b, s)
        })
        .collect();
    vec![
        Claim::new(
            "butterfly/butterfly-2",
            "Figs. 9\u{2013}10, \u{00a7}5.1",
            "the level-by-level schedule of the 2-dimensional butterfly is IC-optimal; B \u{25b7} B",
            butterfly(2),
            butterfly_schedule(2),
            Guarantee::IcOptimal,
        )
        .with_priority_chain(block_chain),
        Claim::new(
            "butterfly/butterfly-5",
            "\u{00a7}5.1",
            "the level-by-level schedule stays a valid execution order at scale (192 nodes)",
            butterfly(5),
            butterfly_schedule(5),
            Guarantee::ValidOrder,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_sched::optimal::{admits_ic_optimal, is_ic_optimal};

    #[test]
    fn butterfly_counts() {
        let b2 = butterfly(2);
        assert_eq!(b2.num_nodes(), 12);
        assert_eq!(b2.num_arcs(), 16);
        assert_eq!(b2.num_sources(), 4);
        assert_eq!(b2.num_sinks(), 4);
        let b3 = butterfly(3);
        assert_eq!(b3.num_nodes(), 32);
        assert_eq!(b3.num_arcs(), 48);
    }

    #[test]
    fn butterfly_one_is_the_block() {
        let b1 = butterfly(1);
        let blk = butterfly_block();
        assert_eq!(b1.num_nodes(), blk.num_nodes());
        assert_eq!(b1.num_arcs(), blk.num_arcs());
    }

    #[test]
    fn schedule_is_valid_and_paired() {
        for d in 1..=4 {
            let g = butterfly(d);
            let s = butterfly_schedule(d);
            assert!(ic_dag::traversal::is_topological(&g, s.order()), "d = {d}");
            assert!(executes_block_pairs_consecutively(d, &s), "d = {d}");
        }
    }

    #[test]
    fn schedule_is_ic_optimal_for_small_dims() {
        for d in 1..=2 {
            let g = butterfly(d);
            assert!(
                is_ic_optimal(&g, &butterfly_schedule(d)).unwrap(),
                "d = {d}"
            );
        }
    }

    #[test]
    fn characterization_iff_on_b2() {
        // §5.1: IC-optimal iff block pairs consecutive. Probe heuristics.
        use ic_sched::heuristics::{schedule_with, Policy};
        let g = butterfly(2);
        for p in Policy::all(11) {
            let s = schedule_with(&g, &p);
            // Normalize: the characterization concerns nonsink order;
            // heuristics may interleave sinks, which can only lower the
            // profile. Compare directly on the raw schedule.
            let optimal = is_ic_optimal(&g, &s).unwrap();
            if optimal {
                assert!(
                    executes_block_pairs_consecutively(2, &s),
                    "{} optimal but unpaired",
                    p.name()
                );
            }
        }
    }

    #[test]
    fn block_chain_reconstructs_butterfly() {
        for d in 1..=3 {
            let direct = butterfly(d);
            let (composed, maps, _) = butterfly_as_block_chain(d);
            assert_eq!(maps.len(), d * (1 << (d - 1)), "block count, d = {d}");
            assert!(
                ic_dag::iso::are_isomorphic(&composed, &direct),
                "d = {d}: block chain must be isomorphic to B_d"
            );
        }
    }

    #[test]
    fn theorem_2_1_schedule_via_blocks_is_ic_optimal() {
        for d in 1..=2 {
            let (composite, _, _) = butterfly_as_block_chain(d);
            let s = butterfly_schedule_via_blocks(d).unwrap();
            assert!(is_ic_optimal(&composite, &s).unwrap(), "d = {d}");
        }
    }

    #[test]
    fn coarsened_butterfly_is_radix_4_butterfly() {
        // d = 4, b = 2: quotient should be the radix-4 butterfly with 2
        // bands of 4 clusters: 8 clusters, each band-0 cluster feeding
        // all 4 clusters that share its untouched bits... for d=4,b=2
        // fixed_count = 4, so 2 * 4 = 8 clusters.
        let q = coarsen_butterfly(4, 2);
        assert_eq!(q.dag.num_nodes(), 8);
        // Every band-0 cluster has out-degree 4 (radix 2^b = 4).
        for c in 0..4u32 {
            assert_eq!(q.dag.out_degree(NodeId(c)), 4);
        }
        assert!(admits_ic_optimal(&q.dag).unwrap());
        // Cluster granularities: band 0 has b * 2^b = 8 nodes per
        // cluster; the last band has (b+1) * 2^b = 12.
        assert_eq!(q.granularity(NodeId(0)), 8);
        assert_eq!(q.granularity(NodeId(4)), 12);
    }

    #[test]
    fn coarsen_b_equals_d_collapses_rows() {
        let q = coarsen_butterfly(3, 3);
        // One band, fixed_count = 1: a single cluster.
        assert_eq!(q.dag.num_nodes(), 1);
        assert_eq!(q.granularity(NodeId(0)), 32);
    }

    #[test]
    fn coarsen_b1_is_levelwise_pairing() {
        // b = 1: clusters are the individual blocks' column pairs; the
        // quotient is the radix-2 butterfly of dimension d — same block
        // structure one level coarser in rows.
        let q = coarsen_butterfly(2, 1);
        // bands = 2, fixed_count = 2 => 4 clusters.
        assert_eq!(q.dag.num_nodes(), 4);
        assert!(admits_ic_optimal(&q.dag).unwrap());
    }

    #[test]
    fn radix_two_is_the_plain_butterfly() {
        for d in 1..=3 {
            let r2 = radix_butterfly(2, d);
            let b = butterfly(d);
            assert_eq!(r2.num_nodes(), b.num_nodes());
            assert_eq!(r2.num_arcs(), b.num_arcs());
            assert!(ic_dag::iso::are_isomorphic(&r2, &b), "d = {d}");
        }
    }

    #[test]
    fn radix_butterfly_counts() {
        // radix r, dim d: (d+1) r^d nodes, d * r^{d+1} arcs.
        let g = radix_butterfly(3, 2);
        assert_eq!(g.num_nodes(), 3 * 9);
        assert_eq!(g.num_arcs(), 2 * 27);
        assert_eq!(g.num_sources(), 9);
        assert_eq!(g.num_sinks(), 9);
        // Every non-final node has out-degree r.
        assert_eq!(g.out_degree(NodeId(0)), 3);
    }

    #[test]
    fn radix_schedule_is_valid_and_small_cases_ic_optimal() {
        for (r, d) in [(2usize, 2usize), (3, 1), (4, 1), (3, 2)] {
            let g = radix_butterfly(r, d);
            let s = radix_butterfly_schedule(r, d);
            assert!(
                ic_dag::traversal::is_topological(&g, s.order()),
                "r={r} d={d}"
            );
        }
        // Exhaustive: K_{3,3} chains and the radix-4 block.
        for (r, d) in [(3usize, 1usize), (4, 1), (2, 2)] {
            let g = radix_butterfly(r, d);
            let s = radix_butterfly_schedule(r, d);
            assert!(is_ic_optimal(&g, &s).unwrap(), "r={r} d={d}");
        }
    }

    #[test]
    fn coarsened_butterfly_is_a_radix_butterfly() {
        // The Fig. 10 statement, exactly: coarsen(B_d, b) ≅
        // radix_butterfly(2^b, d/b - 1).
        for (d, b) in [(2usize, 1usize), (4, 2), (3, 1), (6, 2), (6, 3)] {
            let q = coarsen_butterfly(d, b);
            let expect = radix_butterfly(1 << b, d / b - 1);
            assert!(
                ic_dag::iso::are_isomorphic(&q.dag, &expect),
                "coarsen(B_{d}, {b}) vs radix_butterfly({}, {})",
                1 << b,
                d / b - 1
            );
        }
    }

    #[test]
    fn radix_block_priority() {
        // K_{r,r} ▷ K_{r,r}: the degree-r analogue of B ▷ B.
        use ic_sched::priority::has_priority;
        for r in [2usize, 3, 4] {
            let g = radix_butterfly(r, 1);
            let s = radix_butterfly_schedule(r, 1);
            assert!(has_priority(&g, &s, &g, &s), "r = {r}");
        }
    }

    #[test]
    fn butterfly_paired_beats_unpaired_profile() {
        // Executing sources unpaired (0, 2, 1, 3 in B_1) is strictly
        // worse at step 2 than paired (0, 1).
        let g = butterfly(1);
        let paired = butterfly_schedule(1);
        let unpaired = Schedule::new(&g, vec![NodeId(0), NodeId(2), NodeId(1), NodeId(3)]);
        // (0, 2) is invalid: node 2 is a sink whose parents include 1.
        assert!(unpaired.is_err());
        let p = paired.profile(&g);
        assert_eq!(p, vec![2, 1, 2, 1, 0]);
    }
}
