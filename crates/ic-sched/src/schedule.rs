//! Schedules and eligibility profiles.
//!
//! A *schedule* for a dag `G` is a rule for selecting which ELIGIBLE node
//! to execute at each step (§2.2); since we study complete executions,
//! we represent a schedule extensionally, as the execution order itself —
//! a precedence-respecting permutation of `G`'s nodes.

use ic_dag::traversal::{is_topological, topological_order};
use ic_dag::{Dag, NodeId};

use crate::eligibility::ExecState;
use crate::error::SchedError;

/// An execution order for a dag: a permutation of its nodes in which
/// every node appears after all of its parents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    order: Vec<NodeId>,
}

impl Schedule {
    /// Wrap an order after validating it against `dag`.
    pub fn new(dag: &Dag, order: Vec<NodeId>) -> Result<Self, SchedError> {
        if !is_topological(dag, &order) {
            return Err(SchedError::InvalidSchedule);
        }
        Ok(Schedule { order })
    }

    /// Wrap an order *without* validation. Intended for constructions
    /// that are correct by construction; debug builds still assert.
    pub fn new_unchecked(order: Vec<NodeId>) -> Self {
        Schedule { order }
    }

    /// The deterministic smallest-id-first topological schedule.
    pub fn in_id_order(dag: &Dag) -> Self {
        Schedule {
            order: topological_order(dag),
        }
    }

    /// The execution order.
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }

    /// Number of scheduled nodes.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Is the schedule empty?
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The eligibility profile `E_Σ(t)` for `t = 0 ..= n`: the number of
    /// ELIGIBLE nodes after the first `t` executions. `E(0)` is the
    /// number of sources; `E(n) = 0`.
    ///
    /// # Panics
    /// Panics if the schedule does not belong to `dag` (invalid orders
    /// are rejected at construction when using [`Schedule::new`]).
    pub fn profile(&self, dag: &Dag) -> Vec<usize> {
        let mut st = ExecState::new(dag);
        let mut profile = Vec::with_capacity(self.order.len() + 1);
        profile.push(st.eligible_count());
        for &v in &self.order {
            st.execute(v)
                .expect("schedule must be a valid execution order");
            profile.push(st.eligible_count());
        }
        profile
    }

    /// The order restricted to the nonsinks of `dag`, preserving relative
    /// order. This is the part of the schedule that matters for IC
    /// quality: sinks render nothing ELIGIBLE.
    pub fn nonsink_order(&self, dag: &Dag) -> Vec<NodeId> {
        self.order
            .iter()
            .copied()
            .filter(|&v| !dag.is_sink(v))
            .collect()
    }

    /// Normalize to the "nonsinks first" shape used throughout the
    /// theory: nonsinks in their current relative order, then all sinks
    /// in their current relative order. Sinks have no children, so this
    /// is always still a valid schedule, and its profile pointwise
    /// dominates the original's over the nonsink prefix.
    pub fn nonsinks_first(&self, dag: &Dag) -> Schedule {
        let mut order = self.nonsink_order(dag);
        order.extend(self.order.iter().copied().filter(|&v| dag.is_sink(v)));
        Schedule { order }
    }

    /// The eligibility profile of the *nonsink prefix* after
    /// normalization: entry `x` is the number of ELIGIBLE nodes after
    /// executing the first `x` nonsinks (and no sinks). This is the
    /// `E(x)` used by the priority relation ▷.
    pub fn nonsink_profile(&self, dag: &Dag) -> Vec<usize> {
        let mut st = ExecState::new(dag);
        let nonsinks = self.nonsink_order(dag);
        let mut profile = Vec::with_capacity(nonsinks.len() + 1);
        profile.push(st.eligible_count());
        for &v in &nonsinks {
            st.execute(v)
                .expect("nonsink order must be executable without the sinks");
            profile.push(st.eligible_count());
        }
        profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_dag::builder::from_arcs;

    fn diamond() -> Dag {
        from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap()
    }

    #[test]
    fn new_rejects_invalid_orders() {
        let g = diamond();
        assert_eq!(
            Schedule::new(&g, vec![NodeId(1), NodeId(0), NodeId(2), NodeId(3)]).unwrap_err(),
            SchedError::InvalidSchedule
        );
        assert_eq!(
            Schedule::new(&g, vec![NodeId(0)]).unwrap_err(),
            SchedError::InvalidSchedule
        );
    }

    #[test]
    fn diamond_profile() {
        let g = diamond();
        let s = Schedule::in_id_order(&g);
        // t=0: source. t=1: nodes 1,2. t=2: node 2. t=3: sink. t=4: none.
        assert_eq!(s.profile(&g), vec![1, 2, 1, 1, 0]);
    }

    #[test]
    fn profile_telescopes_to_zero() {
        let g = from_arcs(6, &[(0, 1), (0, 2), (1, 3), (2, 4), (2, 5)]).unwrap();
        let s = Schedule::in_id_order(&g);
        let p = s.profile(&g);
        assert_eq!(p.len(), 7);
        assert_eq!(*p.last().unwrap(), 0);
        assert_eq!(p[0], g.num_sources());
    }

    #[test]
    fn nonsink_order_filters_sinks() {
        let g = diamond();
        let s = Schedule::in_id_order(&g);
        assert_eq!(s.nonsink_order(&g), vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn nonsinks_first_is_valid_and_dominates() {
        // Vee: schedule root, sink a, sink b vs root, then sinks.
        let g = from_arcs(3, &[(0, 1), (0, 2)]).unwrap();
        let s = Schedule::new(&g, vec![NodeId(0), NodeId(1), NodeId(2)]).unwrap();
        let norm = s.nonsinks_first(&g);
        assert_eq!(norm.order(), s.order()); // already normalized
        let p = norm.profile(&g);
        assert_eq!(p, vec![1, 2, 1, 0]);
    }

    #[test]
    fn nonsink_profile_of_lambda() {
        // Lambda: two sources, one sink.
        let g = from_arcs(3, &[(0, 2), (1, 2)]).unwrap();
        let s = Schedule::in_id_order(&g);
        assert_eq!(s.nonsink_profile(&g), vec![2, 1, 1]);
    }

    #[test]
    fn nonsink_profile_of_vee() {
        let g = from_arcs(3, &[(0, 1), (0, 2)]).unwrap();
        let s = Schedule::in_id_order(&g);
        assert_eq!(s.nonsink_profile(&g), vec![1, 2]);
    }

    #[test]
    fn interleaved_sinks_are_moved_back() {
        let g = diamond();
        // 0, 1, 2, 3 is the only nonsink-first order starting 0,1,2; try
        // an order executing the sink 3 before... impossible in diamond;
        // use a dag with an early sink instead.
        let g2 = from_arcs(3, &[(0, 1)]).unwrap(); // node 2 isolated (sink)
        let s = Schedule::new(&g2, vec![NodeId(2), NodeId(0), NodeId(1)]).unwrap();
        let norm = s.nonsinks_first(&g2);
        assert_eq!(norm.order(), &[NodeId(0), NodeId(2), NodeId(1)]);
        let _ = g;
    }
}
