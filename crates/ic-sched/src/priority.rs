//! The priority relation `G1 ▷ G2` (§2.3.1; inequalities (2.1) of the
//! paper, from \[21\] = Malewicz–Rosenberg–Yurkewych, IEEE TC 55(6) 2006).
//!
//! Informally, `G1 ▷ G2` means one never decreases IC quality by
//! executing a nonsink of `G1` whenever possible, before nonsinks of
//! `G2`. Formally, with `Σᵢ` an IC-optimal schedule for `Gᵢ`, `nᵢ` the
//! number of nonsinks of `Gᵢ`, and `Eᵢ(x)` the number of ELIGIBLE nodes
//! of `Gᵢ` after `Σᵢ` executes its first `x` nonsinks:
//!
//! ```text
//! G1 ▷ G2  ⇔  ∀ x ∈ [0, n1], y ∈ [0, n2]:
//!             E1(x) + E2(y)  ≤  E1(x̂) + E2(ŷ)
//!             where x̂ = min(n1, x + y), ŷ = (x + y) − x̂
//! ```
//!
//! i.e. for any total budget `x + y` of nonsink executions split between
//! the two dags, the "all to `G1` first" split is at least as good.
//!
//! (The inequality block (2.1) is garbled in the available text of the
//! paper; this is the standard definition from the cited source, and the
//! test-suites of this crate and of `ic-families` cross-validate it
//! semantically: every priority claim the paper states — `V ▷ V`,
//! `V ▷ Λ`, `Λ ▷ Λ`, `B ▷ B`, `N_s ▷ N_t`, small-over-large W-dags,
//! `C4 ▷ C4 ▷ Λ`, `V3 ▷ V3 ▷ Λ ▷ Λ` — holds under it, and composite
//! schedules built from it are exhaustively verified IC-optimal.)

use ic_dag::Dag;

use crate::schedule::Schedule;

/// Check `g1 ▷ g2`, given IC-optimal schedules for both.
///
/// The schedules' *nonsink profiles* are used, i.e. both are normalized
/// to "nonsinks first" shape (always possible for IC-optimal schedules
/// without loss of quality).
///
/// ```
/// use ic_dag::builder::from_arcs;
/// use ic_sched::{has_priority, Schedule};
///
/// let vee = from_arcs(3, &[(0, 1), (0, 2)]).unwrap();
/// let lambda = from_arcs(3, &[(0, 2), (1, 2)]).unwrap();
/// let sv = Schedule::in_id_order(&vee);
/// let sl = Schedule::in_id_order(&lambda);
/// assert!(has_priority(&vee, &sv, &lambda, &sl));   // V ▷ Λ
/// assert!(!has_priority(&lambda, &sl, &vee, &sv));  // but not Λ ▷ V
/// ```
pub fn has_priority(g1: &Dag, s1: &Schedule, g2: &Dag, s2: &Schedule) -> bool {
    let e1 = s1.nonsink_profile(g1);
    let e2 = s2.nonsink_profile(g2);
    profiles_have_priority(&e1, &e2)
}

/// The ▷ test on raw nonsink eligibility profiles (`e1.len() = n1 + 1`,
/// `e2.len() = n2 + 1`).
pub fn profiles_have_priority(e1: &[usize], e2: &[usize]) -> bool {
    let n1 = e1.len() - 1;
    let n2 = e2.len() - 1;
    for x in 0..=n1 {
        for y in 0..=n2 {
            let t = x + y;
            let xh = t.min(n1);
            let yh = t - xh;
            if e1[x] + e2[y] > e1[xh] + e2[yh] {
                return false;
            }
        }
    }
    true
}

/// Check that a sequence of (dag, IC-optimal schedule) pairs is a
/// ▷-*chain*: `G_i ▷ G_{i+1}` for every consecutive pair. This is
/// condition (b) of a ▷-linear composition (Theorem 2.1).
pub fn is_priority_chain(stages: &[(&Dag, &Schedule)]) -> bool {
    stages.windows(2).all(|w| {
        let (g1, s1) = w[0];
        let (g2, s2) = w[1];
        has_priority(g1, s1, g2, s2)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimal::find_ic_optimal;
    use ic_dag::builder::from_arcs;
    use ic_dag::dual;

    fn vee() -> Dag {
        from_arcs(3, &[(0, 1), (0, 2)]).unwrap()
    }

    fn lambda() -> Dag {
        from_arcs(3, &[(0, 2), (1, 2)]).unwrap()
    }

    /// Butterfly block: 2 sources, 2 sinks, complete bipartite.
    fn bblock() -> Dag {
        from_arcs(4, &[(0, 2), (0, 3), (1, 2), (1, 3)]).unwrap()
    }

    fn opt(g: &Dag) -> Schedule {
        find_ic_optimal(g)
            .unwrap()
            .expect("admits IC-optimal schedule")
    }

    #[test]
    fn vee_over_vee() {
        let g = vee();
        let s = opt(&g);
        assert!(has_priority(&g, &s, &g, &s));
    }

    #[test]
    fn vee_over_lambda_but_not_conversely() {
        let (v, l) = (vee(), lambda());
        let (sv, sl) = (opt(&v), opt(&l));
        assert!(has_priority(&v, &sv, &l, &sl));
        assert!(!has_priority(&l, &sl, &v, &sv));
    }

    #[test]
    fn lambda_over_lambda() {
        let l = lambda();
        let s = opt(&l);
        assert!(has_priority(&l, &s, &l, &s));
    }

    #[test]
    fn butterfly_block_over_itself() {
        let b = bblock();
        let s = opt(&b);
        assert!(has_priority(&b, &s, &b, &s));
    }

    #[test]
    fn theorem_2_3_duality_of_priority() {
        // G1 ▷ G2  iff  dual(G2) ▷ dual(G1), exercised on all pairs drawn
        // from {V, Λ, B}.
        let dags = [vee(), lambda(), bblock()];
        for g1 in &dags {
            for g2 in &dags {
                let s1 = opt(g1);
                let s2 = opt(g2);
                let d1 = dual(g1);
                let d2 = dual(g2);
                let sd1 = opt(&d1);
                let sd2 = opt(&d2);
                assert_eq!(
                    has_priority(g1, &s1, g2, &s2),
                    has_priority(&d2, &sd2, &d1, &sd1),
                    "Theorem 2.3 violated"
                );
            }
        }
    }

    #[test]
    fn priority_chain_check() {
        let (v, l) = (vee(), lambda());
        let (sv, sl) = (opt(&v), opt(&l));
        assert!(is_priority_chain(&[
            (&v, &sv),
            (&v, &sv),
            (&l, &sl),
            (&l, &sl)
        ]));
        assert!(!is_priority_chain(&[(&l, &sl), (&v, &sv)]));
    }

    #[test]
    fn flat_profiles_trivially_commute() {
        // Profiles constant in x satisfy ▷ in both directions.
        let e1 = vec![3, 3, 3];
        let e2 = vec![5, 5];
        assert!(profiles_have_priority(&e1, &e2));
        assert!(profiles_have_priority(&e2, &e1));
    }
}
