//! Duality-based scheduling tools (§2.3.2; Theorem 2.2).
//!
//! Executing a schedule `Σ` on `G` renders `G`'s nonsources ELIGIBLE in
//! a sequence of "packets": the packet of nonsink execution `j` is the
//! set of nodes whose *last* parent was executed at step `j`. A schedule
//! for the dual dag that executes these packets in *reverse* order
//! (then the dual's sinks, i.e. `G`'s sources) is *dual to* `Σ`, and by
//! Theorem 2.2 it is IC-optimal whenever `Σ` is.

use ic_dag::{dual, Dag, NodeId};

use crate::eligibility::ExecState;
use crate::error::SchedError;
use crate::schedule::Schedule;

/// The packet decomposition of `schedule` on `dag`: `packets[j]` is the
/// set of nonsources rendered ELIGIBLE by the `(j+1)`-th *nonsink*
/// execution (possibly empty), in execution-discovery order.
///
/// The packets partition the nonsources of `dag`.
pub fn packets(dag: &Dag, schedule: &Schedule) -> Result<Vec<Vec<NodeId>>, SchedError> {
    let mut st = ExecState::new(dag);
    let mut out = Vec::with_capacity(dag.num_nonsinks());
    for &v in &schedule.nonsink_order(dag) {
        let newly = st.execute(v)?;
        out.push(newly);
    }
    Ok(out)
}

/// Construct a schedule for `dual(dag)` that is dual to `schedule`
/// (Theorem 2.2 construction): the packets of `schedule`, in reverse
/// packet order, followed by the dual's sinks (`dag`'s sources).
///
/// Node ids are shared between `dag` and its dual, so the returned
/// schedule indexes directly into `dual(dag)`.
pub fn dual_schedule(dag: &Dag, schedule: &Schedule) -> Result<Schedule, SchedError> {
    let pk = packets(dag, schedule)?;
    let mut order: Vec<NodeId> = Vec::with_capacity(dag.num_nodes());
    for packet in pk.iter().rev() {
        order.extend_from_slice(packet);
    }
    // The dual's sinks are exactly dag's sources.
    order.extend(dag.sources());
    let d = dual(dag);
    Schedule::new(&d, order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimal::{find_ic_optimal, is_ic_optimal};
    use ic_dag::builder::from_arcs;

    #[test]
    fn packets_partition_nonsources() {
        let g = from_arcs(6, &[(0, 1), (0, 2), (1, 3), (2, 4), (2, 5)]).unwrap();
        let s = Schedule::in_id_order(&g);
        let pk = packets(&g, &s).unwrap();
        let mut all: Vec<NodeId> = pk.into_iter().flatten().collect();
        all.sort();
        let nonsources: Vec<NodeId> = g.nonsources().collect();
        assert_eq!(all, nonsources);
    }

    #[test]
    fn packet_count_equals_nonsink_count() {
        let g = from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let s = Schedule::in_id_order(&g);
        assert_eq!(packets(&g, &s).unwrap().len(), g.num_nonsinks());
    }

    #[test]
    fn dual_of_out_tree_schedule_is_optimal_for_in_tree() {
        // Complete binary out-tree of 7 nodes; any schedule is IC-optimal
        // for it. Its dual is the 7-node in-tree; the dual schedule must
        // be IC-optimal there (Theorem 2.2).
        let t = from_arcs(7, &[(0, 1), (0, 2), (1, 3), (1, 4), (2, 5), (2, 6)]).unwrap();
        let s = Schedule::in_id_order(&t);
        assert!(is_ic_optimal(&t, &s).unwrap());
        let ds = dual_schedule(&t, &s).unwrap();
        let d = dual(&t);
        assert!(is_ic_optimal(&d, &ds).unwrap());
    }

    #[test]
    fn theorem_2_2_on_random_small_dags() {
        // For a batch of deterministic pseudo-random dags that admit an
        // IC-optimal schedule, the dual schedule must be IC-optimal for
        // the dual dag.
        let mut s = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let mut checked = 0;
        for _ in 0..60 {
            let n = 6 + (next() % 3) as usize;
            let mut arcs = Vec::new();
            for u in 0..n {
                for v in (u + 1)..n {
                    if next() % 100 < 30 {
                        arcs.push((u as u32, v as u32));
                    }
                }
            }
            let g = from_arcs(n, &arcs).unwrap();
            if let Some(opt) = find_ic_optimal(&g).unwrap() {
                let ds = dual_schedule(&g, &opt).unwrap();
                let d = dual(&g);
                assert!(
                    is_ic_optimal(&d, &ds).unwrap(),
                    "Theorem 2.2 violated on {g:?}"
                );
                checked += 1;
            }
        }
        assert!(checked > 10, "too few dags admitted an IC-optimal schedule");
    }

    #[test]
    fn dual_schedule_is_valid_even_for_suboptimal_input() {
        // The construction produces a *valid* dual execution order for
        // any schedule, optimal or not.
        let g = from_arcs(5, &[(0, 2), (1, 2), (2, 3), (2, 4)]).unwrap();
        let s = Schedule::in_id_order(&g);
        let ds = dual_schedule(&g, &s).unwrap();
        assert_eq!(ds.len(), g.num_nodes());
    }
}
