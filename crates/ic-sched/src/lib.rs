//! # `ic-sched` — the core of IC-Scheduling Theory
//!
//! This crate implements, as executable and machine-checkable code, the
//! scheduling theory of Cordasco–Malewicz–Rosenberg for Internet-based
//! computing (IC):
//!
//! * **Eligibility semantics** (§2.2 of the paper): a node is ELIGIBLE
//!   once all its parents have executed; executing nodes one at a time
//!   yields the *eligibility profile* `E_Σ(t)` — the number of ELIGIBLE
//!   nodes after `t` executions ([`eligibility`], [`schedule`]).
//! * **IC-optimality**: a schedule is IC-optimal when it maximizes
//!   `E(t)` at *every* step simultaneously. [`optimal`] computes the
//!   optimal envelope exhaustively (over the dag's down-set lattice) for
//!   dags of up to 64 nodes, checks schedules against it, synthesizes
//!   IC-optimal schedules when they exist, and decides whether *every*
//!   schedule is IC-optimal.
//! * **The priority relation `G1 ▷ G2`** from \[21\] (§2.3.1): executing
//!   `G1`'s nonsinks before `G2`'s never hurts ([`priority`]).
//! * **Theorem 2.1**: a ▷-linear composition is scheduled IC-optimally
//!   by concatenating the stages' IC-optimal schedules
//!   ([`compose_schedule`]).
//! * **Theorems 2.2 / 2.3 (duality)**: dual schedules via packet
//!   reversal, and priority transfer to duals ([`duality`]).
//! * **Baseline heuristics** (FIFO, LIFO, RANDOM, greedy, ...) used as
//!   comparators in the companion simulation studies ([`heuristics`]).
//! * **Quality metrics** over eligibility profiles ([`quality`]).
//!
//! ## Example: the Vee dag is IC-optimally scheduled by any order
//!
//! ```
//! use ic_dag::builder::from_arcs;
//! use ic_sched::{optimal, Schedule};
//!
//! let vee = from_arcs(3, &[(0, 1), (0, 2)]).unwrap();
//! assert!(optimal::every_schedule_ic_optimal(&vee).unwrap());
//! let sched = Schedule::in_id_order(&vee);
//! assert_eq!(sched.profile(&vee), vec![1, 2, 1, 0]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod almost;
pub mod batched;
pub mod compose_schedule;
pub mod duality;
pub mod eligibility;
pub mod error;
pub mod heuristics;
pub mod linearize;
pub mod optimal;
pub mod policy;
pub mod priority;
pub mod quality;
pub mod schedule;

pub use error::SchedError;
pub use policy::{AllocationPolicy, PolicyContext};
pub use priority::has_priority;
pub use schedule::Schedule;
