//! Theorem 2.1: scheduling ▷-linear compositions.
//!
//! Let `G` be a ▷-linear composition of `G_1, ..., G_n` (each with an
//! IC-optimal schedule `Σ_i`, and `G_i ▷ G_{i+1}`). Then the schedule
//! that, for `i = 1..n` in turn, executes the composite nodes
//! corresponding to nonsinks of `G_i` in `Σ_i`'s order, and finally
//! executes all sinks of `G` in any order, is IC-optimal for `G`.
//!
//! The per-stage node maps produced by [`ic_dag::ChainBuilder`] are
//! exactly the correspondence this construction needs.

use ic_dag::{Dag, NodeId};

use crate::error::SchedError;
use crate::priority::is_priority_chain;
use crate::schedule::Schedule;

/// One stage of a composition chain: the stage dag, its map into the
/// composite (`map[v] =` composite id of stage node `v`), and its
/// (IC-optimal) schedule.
#[derive(Clone, Copy)]
pub struct Stage<'a> {
    /// The stage dag `G_i`.
    pub dag: &'a Dag,
    /// Map from `G_i`'s node ids to composite node ids.
    pub map: &'a [NodeId],
    /// An IC-optimal schedule `Σ_i` for `G_i`.
    pub schedule: &'a Schedule,
}

/// Build the Theorem 2.1 composite schedule: stage nonsinks in stage
/// order, then all remaining (sink) nodes in id order.
///
/// Validates that the result is a legal execution order of `composite`;
/// malformed maps surface as [`SchedError::StageMismatch`] or
/// [`SchedError::InvalidSchedule`].
pub fn linear_composition_schedule(
    composite: &Dag,
    stages: &[Stage<'_>],
) -> Result<Schedule, SchedError> {
    let n = composite.num_nodes();
    let mut emitted = vec![false; n];
    let mut order: Vec<NodeId> = Vec::with_capacity(n);

    for (i, stage) in stages.iter().enumerate() {
        if stage.map.len() != stage.dag.num_nodes() || stage.schedule.len() != stage.dag.num_nodes()
        {
            return Err(SchedError::StageMismatch { stage: i });
        }
        for &v in stage.schedule.order() {
            if stage.dag.is_sink(v) {
                continue;
            }
            let cid = stage.map[v.index()];
            if cid.index() >= n {
                return Err(SchedError::StageMismatch { stage: i });
            }
            if emitted[cid.index()] {
                // A composite node is a nonsink of exactly one stage in a
                // well-formed chain; duplication means the maps are wrong.
                return Err(SchedError::StageMismatch { stage: i });
            }
            emitted[cid.index()] = true;
            order.push(cid);
        }
    }
    // Finally execute all sinks of the composite, in any order (id order).
    for v in composite.node_ids() {
        if !emitted[v.index()] {
            order.push(v);
        }
    }
    Schedule::new(composite, order)
}

/// Convenience check for the hypothesis of Theorem 2.1: the stages form
/// a ▷-chain (`G_i ▷ G_{i+1}` for consecutive stages).
pub fn stages_form_priority_chain(stages: &[Stage<'_>]) -> bool {
    let pairs: Vec<(&Dag, &Schedule)> = stages.iter().map(|s| (s.dag, s.schedule)).collect();
    is_priority_chain(&pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimal::{find_ic_optimal, is_ic_optimal};
    use ic_dag::builder::from_arcs;
    use ic_dag::ChainBuilder;

    fn vee() -> Dag {
        from_arcs(3, &[(0, 1), (0, 2)]).unwrap()
    }

    fn lambda() -> Dag {
        from_arcs(3, &[(0, 2), (1, 2)]).unwrap()
    }

    #[test]
    fn diamond_via_theorem_2_1() {
        // V ⇑ Λ with both sinks/sources merged = the 4-node diamond.
        let v = vee();
        let l = lambda();
        let mut chain = ChainBuilder::new(&v);
        chain.push_full(&l).unwrap();
        let (composite, maps) = chain.finish();

        let sv = find_ic_optimal(&v).unwrap().unwrap();
        let sl = find_ic_optimal(&l).unwrap().unwrap();
        let stages = [
            Stage {
                dag: &v,
                map: &maps[0],
                schedule: &sv,
            },
            Stage {
                dag: &l,
                map: &maps[1],
                schedule: &sl,
            },
        ];
        assert!(stages_form_priority_chain(&stages));
        let sched = linear_composition_schedule(&composite, &stages).unwrap();
        assert!(is_ic_optimal(&composite, &sched).unwrap());
    }

    #[test]
    fn out_tree_of_three_vees_via_theorem_2_1() {
        let v = vee();
        let mut chain = ChainBuilder::new(&v);
        chain.push(&v, &[(NodeId(1), NodeId(0))]).unwrap();
        chain.push(&v, &[(NodeId(2), NodeId(0))]).unwrap();
        let (composite, maps) = chain.finish();
        assert_eq!(composite.num_nodes(), 7);

        let sv = find_ic_optimal(&v).unwrap().unwrap();
        let stages: Vec<Stage> = maps
            .iter()
            .map(|m| Stage {
                dag: &v,
                map: m,
                schedule: &sv,
            })
            .collect();
        assert!(stages_form_priority_chain(&stages));
        let sched = linear_composition_schedule(&composite, &stages).unwrap();
        assert!(is_ic_optimal(&composite, &sched).unwrap());
    }

    #[test]
    fn two_lambdas_chained() {
        // Λ ⇑ Λ merging Λ1's sink with Λ2's first source: the 5-node
        // "double accumulation".
        let l = lambda();
        let mut chain = ChainBuilder::new(&l);
        chain.push(&l, &[(NodeId(2), NodeId(0))]).unwrap();
        let (composite, maps) = chain.finish();
        assert_eq!(composite.num_nodes(), 5);

        let sl = find_ic_optimal(&l).unwrap().unwrap();
        let stages: Vec<Stage> = maps
            .iter()
            .map(|m| Stage {
                dag: &l,
                map: m,
                schedule: &sl,
            })
            .collect();
        assert!(stages_form_priority_chain(&stages));
        let sched = linear_composition_schedule(&composite, &stages).unwrap();
        assert!(is_ic_optimal(&composite, &sched).unwrap());
    }

    #[test]
    fn stage_mismatch_detected() {
        let v = vee();
        let sv = find_ic_optimal(&v).unwrap().unwrap();
        let bad_map = vec![NodeId(0)]; // wrong length
        let stages = [Stage {
            dag: &v,
            map: &bad_map,
            schedule: &sv,
        }];
        assert!(matches!(
            linear_composition_schedule(&v, &stages),
            Err(SchedError::StageMismatch { stage: 0 })
        ));
    }
}
