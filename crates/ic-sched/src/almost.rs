//! "Almost optimal" scheduling — the paper's future-work thrust 2.
//!
//! §8 of the paper: *"developing rigorous notions of 'almost' optimal
//! scheduling that apply to ALL dags (which is important since the
//! strong demands of IC optimality preclude the IC-optimal scheduling
//! of many dags)"*. This module provides one such rigorous notion and
//! the machinery around it:
//!
//! * the **regret** of a schedule — its total shortfall against the
//!   optimal envelope, `R(Σ) = Σ_t (opt(t) − E_Σ(t))` — a nonnegative
//!   integer that is `0` exactly when `Σ` is IC-optimal;
//! * [`min_regret_schedule`] — an *exact* minimum-regret schedule by
//!   dynamic programming over the down-set lattice (small dags): the
//!   canonical "as close to IC-optimal as this dag allows" schedule;
//! * [`greedy_regret_schedule`] — a practical one-step-lookahead
//!   heuristic whose regret is measured against the exact optimum in
//!   the test-suite.
//!
//! On dags that *do* admit IC-optimal schedules, the minimum regret is
//! `0` and [`min_regret_schedule`] returns one of them; on dags that do
//! not (unary-chain trees, the odd-even merge network, many random
//! dags), it quantifies exactly how much eligibility must be given up.

use std::collections::HashMap;

use ic_dag::ideals::IdealEnumerator;
use ic_dag::{Dag, NodeId};

use crate::error::SchedError;
use crate::optimal::optimal_envelope;
use crate::schedule::Schedule;

/// The regret of `schedule`: `Σ_t (opt(t) − E_Σ(t))`. Zero iff the
/// schedule is IC-optimal. (Exhaustive envelope; dags of ≤ 64 nodes.)
///
/// ```
/// use ic_dag::builder::from_arcs;
/// use ic_sched::{almost::regret, Schedule};
/// // Two disjoint Λs: interleaving the source pairs wastes eligibility.
/// let g = from_arcs(6, &[(0, 2), (1, 2), (3, 5), (4, 5)]).unwrap();
/// let good = Schedule::new(&g, [0, 1, 3, 4, 2, 5].map(ic_dag::NodeId).to_vec()).unwrap();
/// let bad = Schedule::new(&g, [0, 3, 1, 4, 2, 5].map(ic_dag::NodeId).to_vec()).unwrap();
/// assert_eq!(regret(&g, &good).unwrap(), 0);
/// assert!(regret(&g, &bad).unwrap() > 0);
/// ```
pub fn regret(dag: &Dag, schedule: &Schedule) -> Result<u64, SchedError> {
    let envelope = optimal_envelope(dag)?;
    let profile = schedule.profile(dag);
    Ok(envelope
        .iter()
        .zip(&profile)
        .map(|(&o, &e)| (o - e) as u64)
        .sum())
}

/// The minimum achievable regret over all schedules of `dag`, computed
/// by exact dynamic programming over the down-set lattice, together
/// with a schedule attaining it.
///
/// `min_regret == 0` iff the dag admits an IC-optimal schedule.
pub fn min_regret_schedule(dag: &Dag) -> Result<(u64, Schedule), SchedError> {
    let n = dag.num_nodes();
    let envelope = optimal_envelope(dag)?;
    let en = IdealEnumerator::new(dag)?;

    // Layers of (state, eligible) pairs from the incremental sweep;
    // the DP walks them in decreasing popcount order, so a state's
    // successors (one layer up) are always solved first. Successor
    // eligible masks come from the O(out-degree) incremental update —
    // nothing is recomputed from scratch.
    let mut layers: Vec<Vec<(u64, u64)>> = Vec::with_capacity(n + 1);
    en.for_each_layer(|_, layer| layers.push(layer.to_vec()));
    let total_states: usize = layers.iter().map(Vec::len).sum();

    let full: u64 = if n == 0 {
        0
    } else if n == 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    };
    // best[state] = (min regret accumulated from state's *successors*
    //                to the end, plus those successors' shortfalls,
    //                best next node).
    let mut best: HashMap<u64, (u64, Option<NodeId>)> = HashMap::with_capacity(total_states);
    for layer in layers.iter().rev() {
        for &(s, elig) in layer {
            if s == full {
                best.insert(s, (0, None));
                continue;
            }
            let t = s.count_ones() as usize;
            let mut rest = elig;
            let mut entry: Option<(u64, NodeId)> = None;
            while rest != 0 {
                let bit = rest & rest.wrapping_neg();
                rest ^= bit;
                let b = bit.trailing_zeros();
                let ns = s | bit;
                let ns_elig = en.eligible_after(s, elig, b);
                let shortfall = (envelope[t + 1] - ns_elig.count_ones() as usize) as u64;
                let (future, _) = best[&ns];
                let total = shortfall + future;
                let v = NodeId(b);
                if entry.is_none_or(|(b, _)| total < b) {
                    entry = Some((total, v));
                }
            }
            let (cost, node) = entry.expect("non-full down-sets have eligible nodes");
            best.insert(s, (cost, Some(node)));
        }
    }

    // Walk the optimal policy forward.
    let mut order = Vec::with_capacity(n);
    let mut state = 0u64;
    let min = best[&0].0;
    while let (_, Some(v)) = best[&state] {
        order.push(v);
        state |= 1u64 << v.index();
    }
    Ok((min, Schedule::new(dag, order)?))
}

/// Greedy almost-optimal scheduler for dags of any size: at each step
/// execute the ELIGIBLE node maximizing the immediate next eligible
/// count (ties: larger out-degree, then smaller id). Its regret is
/// *measured*, not guaranteed; compare against [`min_regret_schedule`]
/// where feasible.
pub fn greedy_regret_schedule(dag: &Dag) -> Schedule {
    crate::heuristics::schedule_with(dag, &crate::heuristics::Policy::GreedyEligibility)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimal::{admits_ic_optimal, is_ic_optimal};
    use ic_dag::builder::from_arcs;

    fn diamond() -> Dag {
        from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap()
    }

    /// The unary-chain tree from the §3.1 boundary analysis: admits no
    /// IC-optimal schedule.
    fn unary_tree() -> Dag {
        // root -> u -> v(5 kids); root -> w(2 kids).
        let mut arcs = vec![(0u32, 1), (1, 2), (0, 3)];
        for i in 0..5u32 {
            arcs.push((2, 4 + i));
        }
        arcs.push((3, 9));
        arcs.push((3, 10));
        from_arcs(11, &arcs).unwrap()
    }

    #[test]
    fn regret_zero_iff_ic_optimal() {
        let g = diamond();
        let s = Schedule::in_id_order(&g);
        assert!(is_ic_optimal(&g, &s).unwrap());
        assert_eq!(regret(&g, &s).unwrap(), 0);
    }

    #[test]
    fn min_regret_zero_on_admitting_dags() {
        for g in [
            diamond(),
            from_arcs(3, &[(0, 1), (0, 2)]).unwrap(),
            from_arcs(6, &[(0, 2), (1, 2), (2, 3), (3, 4), (3, 5)]).unwrap(),
        ] {
            let (r, s) = min_regret_schedule(&g).unwrap();
            assert_eq!(r, 0);
            assert!(is_ic_optimal(&g, &s).unwrap());
        }
    }

    #[test]
    fn min_regret_positive_on_non_admitting_dags() {
        let g = unary_tree();
        assert!(!admits_ic_optimal(&g).unwrap());
        let (r, s) = min_regret_schedule(&g).unwrap();
        assert!(r > 0, "non-admitting dag must have positive regret");
        assert_eq!(
            regret(&g, &s).unwrap(),
            r,
            "returned schedule attains the minimum"
        );
    }

    #[test]
    fn min_regret_is_a_true_minimum() {
        // Exhaustively compare against every heuristic and id order.
        let g = unary_tree();
        let (min, _) = min_regret_schedule(&g).unwrap();
        for p in crate::heuristics::Policy::all(3) {
            let s = crate::heuristics::schedule_with(&g, &p);
            assert!(regret(&g, &s).unwrap() >= min, "{}", p.name());
        }
        assert!(regret(&g, &Schedule::in_id_order(&g)).unwrap() >= min);
    }

    #[test]
    fn greedy_regret_is_reasonable() {
        // On the unary tree, greedy lookahead should get within a small
        // factor of the true minimum (measured: bounded by min + n).
        let g = unary_tree();
        let (min, _) = min_regret_schedule(&g).unwrap();
        let greedy = greedy_regret_schedule(&g);
        let rg = regret(&g, &greedy).unwrap();
        assert!(rg >= min);
        assert!(
            rg <= min + g.num_nodes() as u64,
            "greedy regret {rg} vs min {min}"
        );
    }

    #[test]
    fn empty_and_singleton_dags() {
        let e = from_arcs(0, &[]).unwrap();
        let (r, s) = min_regret_schedule(&e).unwrap();
        assert_eq!((r, s.len()), (0, 0));
        let one = from_arcs(1, &[]).unwrap();
        let (r, s) = min_regret_schedule(&one).unwrap();
        assert_eq!(r, 0);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn random_dags_min_regret_consistency() {
        // For random dags: min regret is 0 exactly when the dag admits
        // an IC-optimal schedule.
        let mut st = 0xA11C0DEu64;
        let mut next = move || {
            st ^= st << 13;
            st ^= st >> 7;
            st ^= st << 17;
            st
        };
        for _ in 0..30 {
            let n = 7 + (next() % 3) as usize;
            let mut arcs = Vec::new();
            for u in 0..n {
                for v in (u + 1)..n {
                    if next() % 100 < 30 {
                        arcs.push((u as u32, v as u32));
                    }
                }
            }
            let g = from_arcs(n, &arcs).unwrap();
            let (r, s) = min_regret_schedule(&g).unwrap();
            assert_eq!(regret(&g, &s).unwrap(), r);
            assert_eq!(
                r == 0,
                admits_ic_optimal(&g).unwrap(),
                "consistency on {g:?}"
            );
        }
    }
}
