//! The open allocation-policy surface.
//!
//! An [`AllocationPolicy`] answers the one question the IC server asks
//! (§2.2 of the paper): *given the current ELIGIBLE-and-unallocated
//! pool, which task goes to the next client?* The baseline heuristics
//! ([`crate::heuristics::Policy`]), any precomputed [`Schedule`], and
//! dynamic policies (e.g. trace replay in `ic-sim`) all implement this
//! trait, so the simulator, the schedulers, and the comparison harness
//! accept them interchangeably as `&dyn AllocationPolicy`.

use ic_dag::{Dag, NodeId};

use crate::eligibility::ExecState;
use crate::schedule::Schedule;

/// Everything a policy may inspect when choosing the next task.
pub struct PolicyContext<'d, 's> {
    /// The dag being executed.
    pub dag: &'d Dag,
    /// Execution state so far (which nodes have completed, what is
    /// ELIGIBLE). Note the pool handed to [`AllocationPolicy::choose`]
    /// excludes ELIGIBLE tasks already allocated to other clients.
    pub state: &'s ExecState<'d>,
    /// Number of allocation decisions made so far in this run.
    pub step: usize,
    /// Per-node failure counts (`retries[v.index()]` = how many times
    /// task `v` was allocated and lost), when the driver tracks them —
    /// the live `ic-net` server does; the simulator and the offline
    /// schedulers pass `None`. Lets a policy deprioritize
    /// chronically-failing tasks without changing the trait surface.
    pub retries: Option<&'s [u32]>,
}

/// A (possibly dynamic) rule for allocating ELIGIBLE tasks.
///
/// Implementations must be deterministic functions of `(ctx, pool)` so
/// simulations stay reproducible under a fixed seed; randomized
/// policies derive their stream from the seed and `ctx.step`.
pub trait AllocationPolicy {
    /// Display name, for report tables and trace headers.
    fn name(&self) -> String;

    /// Called once at the start of a run; the default is a no-op.
    /// Implementations validate against the dag here (e.g. a
    /// [`Schedule`] asserts it covers the dag).
    fn prepare(&self, _dag: &Dag) {}

    /// The index into `pool` of the task to allocate next. `pool` lists
    /// the ELIGIBLE-and-unallocated tasks and is never empty; it is the
    /// `O(1)` slice borrowed from [`ExecState::pool`], so its *positional*
    /// order is arbitrary (swap-removal) — policies that care about
    /// arrival order rank entries by [`ExecState::pool_seq`] via
    /// `ctx.state`. The returned index must be in range; the drivers
    /// panic otherwise.
    fn choose(&self, ctx: &PolicyContext<'_, '_>, pool: &[NodeId]) -> usize;
}

/// A precomputed schedule acts as a static priority list: among the
/// pool, allocate the task it ranks earliest.
impl AllocationPolicy for Schedule {
    fn name(&self) -> String {
        "SCHEDULE".into()
    }

    fn prepare(&self, dag: &Dag) {
        assert_eq!(self.len(), dag.num_nodes(), "schedule must cover the dag");
    }

    fn choose(&self, ctx: &PolicyContext<'_, '_>, pool: &[NodeId]) -> usize {
        let mut rank = vec![usize::MAX; ctx.dag.num_nodes()];
        for (i, &v) in self.order().iter().enumerate() {
            rank[v.index()] = i;
        }
        let (mut best_i, mut best) = (0usize, rank[pool[0].index()]);
        for (i, &v) in pool.iter().enumerate().skip(1) {
            if rank[v.index()] < best {
                best_i = i;
                best = rank[v.index()];
            }
        }
        best_i
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_dag::builder::from_arcs;

    #[test]
    fn schedule_policy_follows_its_ranking() {
        let g = from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let s = Schedule::new(&g, vec![NodeId(0), NodeId(2), NodeId(1), NodeId(3)]).unwrap();
        let st = ExecState::new(&g);
        let ctx = PolicyContext {
            dag: &g,
            state: &st,
            step: 0,
            retries: None,
        };
        // Pool {1, 2}: the schedule ranks 2 before 1.
        assert_eq!(s.choose(&ctx, &[NodeId(1), NodeId(2)]), 1);
        assert_eq!(s.choose(&ctx, &[NodeId(2), NodeId(1)]), 0);
    }

    #[test]
    #[should_panic(expected = "schedule must cover the dag")]
    fn short_schedule_fails_prepare() {
        let g = from_arcs(3, &[(0, 1), (0, 2)]).unwrap();
        let s = Schedule::new_unchecked(vec![NodeId(0)]);
        s.prepare(&g);
    }
}
