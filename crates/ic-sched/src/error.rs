//! Errors of the scheduling layer.

use std::fmt;

use ic_dag::{DagError, NodeId};

/// Errors raised by schedule construction, execution, and checking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedError {
    /// The node is not currently ELIGIBLE (unexecuted with all parents
    /// executed), so executing it would violate the precedence order.
    NotEligible(NodeId),
    /// The node has already been executed (re-execution is disallowed,
    /// §2.2).
    AlreadyExecuted(NodeId),
    /// The proposed schedule is not a precedence-respecting permutation
    /// of the dag's nodes.
    InvalidSchedule,
    /// A stage map or stage schedule does not match its stage dag.
    StageMismatch {
        /// Index of the offending stage.
        stage: usize,
    },
    /// The dag admits no IC-optimal schedule.
    NoIcOptimalSchedule,
    /// The node is ELIGIBLE but not in the allocation pool (it is
    /// claimed by a worker), so it cannot be claimed again.
    NotPooled(NodeId),
    /// The node is already in the allocation pool, so it cannot be
    /// returned to it.
    AlreadyPooled(NodeId),
    /// An underlying dag error (e.g. too large for exhaustive checking).
    Dag(DagError),
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::NotEligible(v) => write!(f, "node {v} is not ELIGIBLE"),
            SchedError::AlreadyExecuted(v) => write!(f, "node {v} was already executed"),
            SchedError::InvalidSchedule => write!(f, "schedule is not a valid execution order"),
            SchedError::StageMismatch { stage } => {
                write!(
                    f,
                    "stage {stage}: map or schedule does not match the stage dag"
                )
            }
            SchedError::NoIcOptimalSchedule => write!(f, "dag admits no IC-optimal schedule"),
            SchedError::NotPooled(v) => {
                write!(f, "node {v} is not in the eligible pool (already claimed)")
            }
            SchedError::AlreadyPooled(v) => {
                write!(f, "node {v} is already in the eligible pool")
            }
            SchedError::Dag(e) => write!(f, "dag error: {e}"),
        }
    }
}

impl std::error::Error for SchedError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SchedError::Dag(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DagError> for SchedError {
    fn from(e: DagError) -> Self {
        SchedError::Dag(e)
    }
}
