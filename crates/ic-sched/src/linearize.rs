//! ▷-linearization — the heart of the main scheduling algorithm of
//! \[21\] (Malewicz–Rosenberg–Yurkewych).
//!
//! Theorem 2.1 needs the composition's stages to come in an order where
//! consecutive stages satisfy `G_i ▷ G_{i+1}`. Given a *set* of stages
//! (building blocks with their IC-optimal schedules), this module
//! decides whether such an order exists among a candidate permutation
//! class and produces one: it sorts stages by the ▷ relation (which on
//! the theory's building blocks behaves like a total preorder — e.g.
//! `W_s ▷ W_t ⇔ s ≤ t`, `N_s ▷ N_t` always, `V_a ▷ V_b ⇔ a ≥ b`) and
//! then *verifies* every consecutive pair, returning `None` when the
//! relation genuinely cannot be chained.
//!
//! Caveat: linearization reorders *priorities*, not composition
//! structure — a reordered stage sequence must still describe the same
//! composite for Theorem 2.1 to apply. Use the result to choose a stage
//! order *before* composing, then feed the ordered stages to
//! [`crate::compose_schedule::linear_composition_schedule`].

use ic_dag::Dag;

use crate::priority::has_priority;
use crate::schedule::Schedule;

/// A building block for linearization: a dag and an IC-optimal schedule
/// for it.
#[derive(Clone, Copy)]
pub struct Block<'a> {
    /// The block dag.
    pub dag: &'a Dag,
    /// An IC-optimal schedule for it.
    pub schedule: &'a Schedule,
}

/// Try to arrange `blocks` into a ▷-chain. Returns the indices of the
/// blocks in chain order, or `None` if no chain exists among the
/// sort-induced candidates (verified pairwise, so a returned order is
/// always a genuine ▷-chain).
///
/// ```
/// use ic_dag::builder::from_arcs;
/// use ic_sched::{linearize::{linearize, Block}, Schedule};
/// let vee = from_arcs(3, &[(0, 1), (0, 2)]).unwrap();
/// let lambda = from_arcs(3, &[(0, 2), (1, 2)]).unwrap();
/// let (sv, sl) = (Schedule::in_id_order(&vee), Schedule::in_id_order(&lambda));
/// let blocks = [
///     Block { dag: &lambda, schedule: &sl },
///     Block { dag: &vee, schedule: &sv },
/// ];
/// // V ▷ Λ: the Vee must come first.
/// assert_eq!(linearize(&blocks), Some(vec![1, 0]));
/// ```
pub fn linearize(blocks: &[Block<'_>]) -> Option<Vec<usize>> {
    let n = blocks.len();
    if n <= 1 {
        return Some((0..n).collect());
    }
    // Precompute the pairwise relation.
    let mut wins = vec![vec![false; n]; n];
    for i in 0..n {
        for j in 0..n {
            if i != j {
                wins[i][j] = has_priority(
                    blocks[i].dag,
                    blocks[i].schedule,
                    blocks[j].dag,
                    blocks[j].schedule,
                );
            }
        }
    }
    // Sort by "number of blocks this block has priority over",
    // descending: on a total preorder this is a valid linear extension;
    // the subsequent verification catches anything else.
    let mut order: Vec<usize> = (0..n).collect();
    let score = |i: usize| wins[i].iter().filter(|&&w| w).count();
    order.sort_by_key(|&i| std::cmp::Reverse(score(i)));
    let ok = order.windows(2).all(|w| wins[w[0]][w[1]]);
    ok.then_some(order)
}

/// Does the multiset of blocks admit *any* ▷-chain? (Exhaustive over
/// permutations for small block counts; use only with ≲ 8 blocks.)
pub fn chain_exists_exhaustive(blocks: &[Block<'_>]) -> bool {
    let n = blocks.len();
    if n <= 1 {
        return true;
    }
    let mut wins = vec![vec![false; n]; n];
    for i in 0..n {
        for j in 0..n {
            if i != j {
                wins[i][j] = has_priority(
                    blocks[i].dag,
                    blocks[i].schedule,
                    blocks[j].dag,
                    blocks[j].schedule,
                );
            }
        }
    }
    // DFS over partial chains (Hamiltonian path in the ▷ digraph, with
    // memoization over (last, visited-mask)).
    fn dfs(
        wins: &[Vec<bool>],
        last: usize,
        visited: u32,
        n: usize,
        dead: &mut std::collections::HashSet<(usize, u32)>,
    ) -> bool {
        if visited.count_ones() as usize == n {
            return true;
        }
        if dead.contains(&(last, visited)) {
            return false;
        }
        for next in 0..n {
            if visited & (1 << next) == 0
                && wins[last][next]
                && dfs(wins, next, visited | (1 << next), n, dead)
            {
                return true;
            }
        }
        dead.insert((last, visited));
        false
    }
    let mut dead = std::collections::HashSet::new();
    (0..n).any(|start| dfs(&wins, start, 1 << start, n, &mut dead))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_dag::builder::from_arcs;

    fn vee() -> Dag {
        from_arcs(3, &[(0, 1), (0, 2)]).unwrap()
    }

    fn vee_d(d: usize) -> Dag {
        let arcs: Vec<(u32, u32)> = (1..=d as u32).map(|i| (0, i)).collect();
        from_arcs(d + 1, &arcs).unwrap()
    }

    fn lambda() -> Dag {
        from_arcs(3, &[(0, 2), (1, 2)]).unwrap()
    }

    #[test]
    fn sorts_vees_before_lambdas() {
        let v = vee();
        let l = lambda();
        let (sv, sl) = (Schedule::in_id_order(&v), Schedule::in_id_order(&l));
        let blocks = [
            Block {
                dag: &l,
                schedule: &sl,
            },
            Block {
                dag: &v,
                schedule: &sv,
            },
            Block {
                dag: &l,
                schedule: &sl,
            },
            Block {
                dag: &v,
                schedule: &sv,
            },
        ];
        let order = linearize(&blocks).expect("V/Λ mixes always chain");
        // Both Vees (indices 1, 3) must precede both Lambdas (0, 2).
        let pos = |i: usize| order.iter().position(|&x| x == i).unwrap();
        assert!(pos(1) < pos(0) && pos(1) < pos(2));
        assert!(pos(3) < pos(0) && pos(3) < pos(2));
    }

    #[test]
    fn sorts_wide_vees_first() {
        // V_a ▷ V_b iff a >= b: the widest Vee must come first.
        let v2 = vee_d(2);
        let v3 = vee_d(3);
        let v5 = vee_d(5);
        let (s2, s3, s5) = (
            Schedule::in_id_order(&v2),
            Schedule::in_id_order(&v3),
            Schedule::in_id_order(&v5),
        );
        let blocks = [
            Block {
                dag: &v2,
                schedule: &s2,
            },
            Block {
                dag: &v5,
                schedule: &s5,
            },
            Block {
                dag: &v3,
                schedule: &s3,
            },
        ];
        let order = linearize(&blocks).expect("Vees form a total ▷ order");
        assert_eq!(order, vec![1, 2, 0]); // widths 5, 3, 2
    }

    #[test]
    fn single_and_empty_block_sets() {
        let v = vee();
        let sv = Schedule::in_id_order(&v);
        assert_eq!(linearize(&[]), Some(vec![]));
        assert_eq!(
            linearize(&[Block {
                dag: &v,
                schedule: &sv
            }]),
            Some(vec![0])
        );
    }

    #[test]
    fn unchainable_blocks_return_none() {
        // Λ ▷ V fails and V ▷ Λ holds, so [Λ, V] linearizes as [V, Λ];
        // to force a None we need blocks where neither direction holds.
        // E_X = [1, 3] (V3) vs a dag whose profile makes both directions
        // fail: take X = V3 and Y = 2·Λ (two disjoint Lambdas, paired
        // schedule) — E_Y = [4, 3, 3, 2, 2]? Verify via the checker: we
        // only assert consistency (linearize agrees with the exhaustive
        // search).
        let v3 = vee_d(3);
        let yy = from_arcs(6, &[(0, 2), (1, 2), (3, 5), (4, 5)]).unwrap();
        let sy = crate::optimal::find_ic_optimal(&yy).unwrap().unwrap();
        let s3 = Schedule::in_id_order(&v3);
        let blocks = [
            Block {
                dag: &v3,
                schedule: &s3,
            },
            Block {
                dag: &yy,
                schedule: &sy,
            },
        ];
        let fast = linearize(&blocks).is_some();
        let slow = chain_exists_exhaustive(&blocks);
        assert_eq!(
            fast, slow,
            "linearize must agree with exhaustive search here"
        );
    }

    #[test]
    fn exhaustive_agrees_with_sort_on_standard_blocks() {
        let v = vee();
        let v3 = vee_d(3);
        let l = lambda();
        let (sv, s3, sl) = (
            Schedule::in_id_order(&v),
            Schedule::in_id_order(&v3),
            Schedule::in_id_order(&l),
        );
        let blocks = [
            Block {
                dag: &l,
                schedule: &sl,
            },
            Block {
                dag: &v3,
                schedule: &s3,
            },
            Block {
                dag: &v,
                schedule: &sv,
            },
            Block {
                dag: &l,
                schedule: &sl,
            },
        ];
        assert!(linearize(&blocks).is_some());
        assert!(chain_exists_exhaustive(&blocks));
    }
}
