//! Batched scheduling — the orthogonal regimen of \[20\]
//! (Malewicz–Rosenberg, Euro-Par 2005), described in the paper's
//! Related Work: "a server allocates batches of tasks periodically,
//! rather than allocating individual tasks as soon as they become
//! eligible. Optimality is always possible within the batched
//! framework, but achieving it may entail a prohibitively complex
//! computation."
//!
//! Model: execution proceeds in synchronous *rounds*. Each round the
//! server selects up to `width` currently-ELIGIBLE tasks (a batch); all
//! of them complete before the next round. The quality profile is the
//! number of ELIGIBLE tasks remaining after each round — the batched
//! analogue of `E_Σ(t)`. [`optimal_batches`] computes a schedule that
//! (a) uses the *minimum possible number of rounds* and (b) greedily
//! maximizes the post-round ELIGIBLE count along a minimum-round
//! trajectory. As \[20\] observes, optimality is always achievable in the
//! batched framework but may be prohibitively expensive — our exact
//! minimum-round computation walks the full down-set lattice and is
//! meant for small dags; [`greedy_batches`] is the practical heuristic.

use std::collections::{HashMap, HashSet};

use ic_dag::ideals::IdealEnumerator;
use ic_dag::{Dag, NodeId};

use crate::eligibility::ExecState;
use crate::error::SchedError;
use crate::policy::{AllocationPolicy, PolicyContext};

/// A batch schedule: a sequence of batches, each a set of tasks that
/// are simultaneously ELIGIBLE when their round starts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchSchedule {
    batches: Vec<Vec<NodeId>>,
}

impl BatchSchedule {
    /// Wrap and validate: each batch must be non-empty (except for an
    /// empty dag), within the width, fully ELIGIBLE at its round, and
    /// the rounds must execute every node exactly once.
    pub fn new(dag: &Dag, batches: Vec<Vec<NodeId>>, width: usize) -> Result<Self, SchedError> {
        let mut st = ExecState::new(dag);
        for batch in &batches {
            if batch.is_empty() || batch.len() > width {
                return Err(SchedError::InvalidSchedule);
            }
            // All batch members must be ELIGIBLE *before* any of them runs.
            for &v in batch {
                if !st.is_eligible(v) {
                    return Err(SchedError::NotEligible(v));
                }
            }
            for &v in batch {
                st.execute(v)?;
            }
        }
        if !st.is_complete() {
            return Err(SchedError::InvalidSchedule);
        }
        Ok(BatchSchedule { batches })
    }

    /// The batches.
    pub fn batches(&self) -> &[Vec<NodeId>] {
        &self.batches
    }

    /// Number of rounds.
    pub fn num_rounds(&self) -> usize {
        self.batches.len()
    }

    /// The batched eligibility profile: ELIGIBLE count after each round
    /// (index 0 = before any round).
    pub fn profile(&self, dag: &Dag) -> Vec<usize> {
        let mut st = ExecState::new(dag);
        let mut out = vec![st.eligible_count()];
        for batch in &self.batches {
            for &v in batch {
                st.execute(v).expect("validated at construction");
            }
            out.push(st.eligible_count());
        }
        out
    }
}

/// Greedy batched scheduler: each round, take up to `width` ELIGIBLE
/// tasks, preferring tasks ranked earlier by `priority` (a map from
/// node to rank; e.g. positions in an IC-optimal sequential schedule).
///
/// ```
/// use ic_dag::builder::from_arcs;
/// use ic_sched::batched::greedy_batches;
/// let diamond = from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
/// let b = greedy_batches(&diamond, 2, &[0, 1, 2, 3]);
/// // Rounds: {0}, {1, 2}, {3}.
/// assert_eq!(b.num_rounds(), 3);
/// ```
///
/// # Panics
/// Panics if `width == 0`.
pub fn greedy_batches(dag: &Dag, width: usize, priority: &[usize]) -> BatchSchedule {
    assert!(width > 0, "batch width must be positive");
    let mut st = ExecState::new(dag);
    let mut batches = Vec::new();
    while !st.is_complete() {
        // This driver never claims, so the pool *is* the ELIGIBLE set.
        // The pool's order is arbitrary; ties break by id so the result
        // matches the historical id-ordered scan.
        let mut eligible: Vec<NodeId> = st.pool().to_vec();
        eligible.sort_by_key(|v| (priority.get(v.index()).copied().unwrap_or(usize::MAX), v.0));
        let batch: Vec<NodeId> = eligible.into_iter().take(width).collect();
        for &v in &batch {
            st.execute_counting(v).expect("drawn from the eligible set");
        }
        batches.push(batch);
    }
    BatchSchedule { batches }
}

/// Claim up to `width` tasks from `state`'s pool for one allocation
/// round, each chosen by `policy` against the pool as it shrinks.
/// The round's tasks are returned in choice order and stay *claimed*
/// (ELIGIBLE but out of the pool) — the caller decides what a round
/// means: [`batches_with`] executes them synchronously, the `ic-net`
/// server leases them to a worker and executes on report.
///
/// `step0` is the number of allocation decisions made before this
/// round ([`PolicyContext::step`] counts on from it); `retries` is
/// passed through to the context. Stops early when the pool drains.
///
/// # Panics
/// Panics if the policy returns an out-of-range pool index.
pub fn fill_round(
    state: &mut ExecState<'_>,
    dag: &Dag,
    policy: &dyn AllocationPolicy,
    width: usize,
    step0: usize,
    retries: Option<&[u32]>,
) -> Vec<NodeId> {
    let mut round = Vec::new();
    while round.len() < width && state.pool_len() > 0 {
        let i = {
            let ctx = PolicyContext {
                dag,
                state,
                step: step0 + round.len(),
                retries,
            };
            policy.choose(&ctx, state.pool())
        };
        assert!(
            i < state.pool_len(),
            "policy chose an out-of-range pool index"
        );
        round.push(state.claim_at(i));
    }
    round
}

/// Batched execution of `dag` driven by an arbitrary
/// [`AllocationPolicy`]: each synchronous round claims up to `width`
/// tasks via [`fill_round`], then executes them all before the next
/// round. With a [`crate::Schedule`] policy this is the batched \[20\]
/// regimen of that schedule's priorities — the same per-round choices
/// the `ic-net` server makes with `--batch width`, which is what lets
/// a live batched run be compared against this offline reference.
///
/// # Panics
/// Panics if `width == 0` or if the policy rejects the dag in
/// [`AllocationPolicy::prepare`].
pub fn batches_with(dag: &Dag, width: usize, policy: &dyn AllocationPolicy) -> BatchSchedule {
    assert!(width > 0, "batch width must be positive");
    policy.prepare(dag);
    let mut st = ExecState::new(dag);
    let mut batches = Vec::new();
    let mut step = 0usize;
    while !st.is_complete() {
        let batch = fill_round(&mut st, dag, policy, width, step, None);
        assert!(
            !batch.is_empty(),
            "an incomplete dag always has an ELIGIBLE task"
        );
        step += batch.len();
        for &v in &batch {
            st.execute_counting(v)
                .expect("round members are claimed ELIGIBLE tasks");
        }
        batches.push(batch);
    }
    BatchSchedule { batches }
}

/// The eligible mask after executing the whole batch `mask` from
/// `(state, eligible)`, by chaining the incremental per-node update.
/// Every batch member is ELIGIBLE at round start and executions of
/// co-members never revoke eligibility, so the chain is well-defined.
fn advance(en: &IdealEnumerator, mut state: u64, mut eligible: u64, mask: u64) -> u64 {
    let mut rest = mask;
    while rest != 0 {
        let bit = rest & rest.wrapping_neg();
        rest ^= bit;
        eligible = en.eligible_after(state, eligible, bit.trailing_zeros());
        state |= bit;
    }
    eligible
}

/// The minimum number of rounds needed to execute `dag` with batches of
/// at most `width` tasks, by BFS over the down-set lattice (dags of
/// ≤ 64 nodes). With unbounded width this is the dag's height; with
/// width 1 it is `n`.
pub fn min_rounds(dag: &Dag, width: usize) -> Result<usize, SchedError> {
    assert!(width > 0);
    let n = dag.num_nodes();
    if n == 0 {
        return Ok(0);
    }
    let en = IdealEnumerator::new(dag)?;
    let full: u64 = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
    // Each frontier entry carries its eligible mask, so successor masks
    // come from the O(out-degree) incremental update.
    let mut layer: Vec<(u64, u64)> = vec![(0, en.eligible_mask(0))];
    let mut seen: HashSet<u64> = HashSet::new();
    seen.insert(0);
    let mut rounds = 0usize;
    while !layer.is_empty() {
        if layer.iter().any(|&(s, _)| s == full) {
            return Ok(rounds);
        }
        rounds += 1;
        let mut next = Vec::new();
        for &(state, elig) in &layer {
            for mask in subsets_up_to(elig, width) {
                let ns = state | mask;
                if seen.insert(ns) {
                    next.push((ns, advance(&en, state, elig, mask)));
                }
            }
        }
        layer = next;
    }
    Err(SchedError::InvalidSchedule)
}

/// Exhaustive minimum-round batch schedule for small dags, greedily
/// maximizing the post-round ELIGIBLE count at each step among the
/// batches that stay on a minimum-round trajectory.
pub fn optimal_batches(dag: &Dag, width: usize) -> Result<BatchSchedule, SchedError> {
    assert!(width > 0);
    let n = dag.num_nodes();
    if n == 0 {
        return Ok(BatchSchedule {
            batches: Vec::new(),
        });
    }
    let en = IdealEnumerator::new(dag)?;
    let full: u64 = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };

    // Phase 1: rounds-to-go for every reachable state, by dynamic
    // programming over states in decreasing popcount order. The layered
    // sweep hands over each size class with eligible masks attached, so
    // nothing is recomputed per state; a state's batch successors have
    // strictly larger popcount, hence are already solved when the DP
    // (walking layers largest-first) reaches it. `info` records
    // (rounds-to-go, eligible count) per state for phase 2's scoring.
    let mut layers: Vec<Vec<(u64, u64)>> = Vec::with_capacity(n + 1);
    en.for_each_layer(|_, layer| layers.push(layer.to_vec()));
    let total: usize = layers.iter().map(Vec::len).sum();
    let mut info: HashMap<u64, (usize, u32)> = HashMap::with_capacity(total);
    for layer in layers.iter().rev() {
        for &(s, elig) in layer {
            if s == full {
                info.insert(s, (0, 0));
                continue;
            }
            let mut best = usize::MAX;
            for mask in subsets_up_to(elig, width) {
                if let Some(&(t, _)) = info.get(&(s | mask)) {
                    best = best.min(t.saturating_add(1));
                }
            }
            info.insert(s, (best, elig.count_ones()));
        }
    }

    // Phase 2: walk forward, each round choosing the batch that (a)
    // stays on a minimum-round trajectory and (b) maximizes the
    // post-round eligible count (ties: lexicographically smallest mask,
    // for determinism). The walk carries its eligible mask incrementally.
    let mut state = 0u64;
    let mut elig = en.eligible_mask(0);
    let mut batches = Vec::new();
    while state != full {
        let need = info[&state].0;
        let mut best: Option<(usize, std::cmp::Reverse<u64>, u64)> = None;
        for mask in subsets_up_to(elig, width) {
            let ns = state | mask;
            let (togo, elig_count) = info[&ns];
            if togo + 1 != need {
                continue;
            }
            let score = (elig_count as usize, std::cmp::Reverse(mask), mask);
            if best.as_ref().is_none_or(|b| score > *b) {
                best = Some(score);
            }
        }
        let (_, _, mask) = best.ok_or(SchedError::InvalidSchedule)?;
        let mut batch = Vec::new();
        let mut rest = mask;
        while rest != 0 {
            let bit = rest & rest.wrapping_neg();
            rest ^= bit;
            batch.push(NodeId(bit.trailing_zeros()));
        }
        elig = advance(&en, state, elig, mask);
        state |= mask;
        batches.push(batch);
    }
    Ok(BatchSchedule { batches })
}

/// Enumerate the subsets of `mask` with between 1 and `width` bits —
/// but when `mask` has at most `width` bits, only the full set (taking
/// fewer than possible never helps: executing extra eligible tasks in
/// the same round is free in the synchronous model).
fn subsets_up_to(mask: u64, width: usize) -> Vec<u64> {
    let k = mask.count_ones() as usize;
    if k == 0 {
        return Vec::new();
    }
    if k <= width {
        return vec![mask];
    }
    // Enumerate all width-sized subsets of the set bits.
    let bits: Vec<u64> = {
        let mut v = Vec::with_capacity(k);
        let mut rest = mask;
        while rest != 0 {
            let b = rest & rest.wrapping_neg();
            rest ^= b;
            v.push(b);
        }
        v
    };
    let mut out = Vec::new();
    // Gosper-style combination walk over indices.
    let mut idx: Vec<usize> = (0..width).collect();
    loop {
        out.push(idx.iter().fold(0u64, |m, &i| m | bits[i]));
        // Advance the combination.
        let mut i = width;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if idx[i] != i + k - width {
                idx[i] += 1;
                for j in i + 1..width {
                    idx[j] = idx[j - 1] + 1;
                }
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_dag::builder::from_arcs;
    use ic_dag::traversal::height;

    fn diamond() -> Dag {
        from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap()
    }

    #[test]
    fn greedy_respects_width_and_completes() {
        let g = diamond();
        let prio: Vec<usize> = (0..4).collect();
        for width in 1..=3 {
            let b = greedy_batches(&g, width, &prio);
            assert!(b.batches().iter().all(|bt| bt.len() <= width));
            let total: usize = b.batches().iter().map(Vec::len).sum();
            assert_eq!(total, 4);
            // Round-trips through the validator.
            assert!(BatchSchedule::new(&g, b.batches().to_vec(), width).is_ok());
        }
    }

    #[test]
    fn width_one_matches_sequential() {
        let g = diamond();
        let prio: Vec<usize> = (0..4).collect();
        let b = greedy_batches(&g, 1, &prio);
        assert_eq!(b.num_rounds(), 4);
    }

    #[test]
    fn unbounded_width_achieves_height_rounds() {
        let g = diamond();
        assert_eq!(min_rounds(&g, 64).unwrap(), height(&g));
        let mesh = from_arcs(6, &[(0, 1), (0, 2), (1, 3), (1, 4), (2, 4), (2, 5)]).unwrap();
        assert_eq!(min_rounds(&mesh, 64).unwrap(), height(&mesh));
    }

    #[test]
    fn min_rounds_with_width_one_is_n() {
        let g = diamond();
        assert_eq!(min_rounds(&g, 1).unwrap(), 4);
    }

    #[test]
    fn optimal_batches_achieve_min_rounds() {
        let g = diamond();
        for width in 1..=3usize {
            let opt = optimal_batches(&g, width).unwrap();
            assert_eq!(
                opt.num_rounds(),
                min_rounds(&g, width).unwrap(),
                "width {width}"
            );
            assert!(BatchSchedule::new(&g, opt.batches().to_vec(), width).is_ok());
        }
    }

    #[test]
    fn optimal_dominates_greedy_profile() {
        // A dag where greedy-by-id can pick a worse batch.
        let g = from_arcs(
            8,
            &[
                (0, 3),
                (1, 3),
                (1, 4),
                (2, 4),
                (3, 5),
                (4, 6),
                (5, 7),
                (6, 7),
            ],
        )
        .unwrap();
        let width = 2;
        let opt = optimal_batches(&g, width).unwrap();
        let prio: Vec<usize> = (0..8).collect();
        let greedy = greedy_batches(&g, width, &prio);
        assert!(opt.num_rounds() <= greedy.num_rounds());
    }

    #[test]
    fn validator_rejects_premature_batches() {
        let g = diamond();
        // Node 1 is not eligible in round 1 alongside node 0.
        let bad = vec![vec![NodeId(0), NodeId(1)], vec![NodeId(2)], vec![NodeId(3)]];
        assert!(matches!(
            BatchSchedule::new(&g, bad, 4),
            Err(SchedError::NotEligible(_))
        ));
    }

    #[test]
    fn validator_rejects_incomplete_schedules() {
        let g = diamond();
        let partial = vec![vec![NodeId(0)]];
        assert_eq!(
            BatchSchedule::new(&g, partial, 4).unwrap_err(),
            SchedError::InvalidSchedule
        );
    }

    #[test]
    fn validator_rejects_overwide_batches() {
        let g = from_arcs(3, &[]).unwrap();
        let too_wide = vec![vec![NodeId(0), NodeId(1), NodeId(2)]];
        assert_eq!(
            BatchSchedule::new(&g, too_wide, 2).unwrap_err(),
            SchedError::InvalidSchedule
        );
    }

    #[test]
    fn batch_profile_counts_rounds() {
        let g = diamond();
        let opt = optimal_batches(&g, 2).unwrap();
        let prof = opt.profile(&g);
        assert_eq!(prof.len(), opt.num_rounds() + 1);
        assert_eq!(prof[0], 1);
        assert_eq!(*prof.last().unwrap(), 0);
    }

    #[test]
    fn batches_with_schedule_matches_greedy_priorities() {
        // A Schedule policy ranks pool tasks by schedule position —
        // exactly greedy_batches with the schedule's ranks as priority.
        let g = from_arcs(
            8,
            &[
                (0, 3),
                (1, 3),
                (1, 4),
                (2, 4),
                (3, 5),
                (4, 6),
                (5, 7),
                (6, 7),
            ],
        )
        .unwrap();
        let order: Vec<NodeId> = (0..8).map(NodeId).collect();
        let sched = crate::Schedule::new(&g, order).unwrap();
        let mut prio = vec![0usize; 8];
        for (i, v) in sched.order().iter().enumerate() {
            prio[v.index()] = i;
        }
        for width in 1..=4usize {
            let by_policy = batches_with(&g, width, &sched);
            let by_prio = greedy_batches(&g, width, &prio);
            assert_eq!(by_policy, by_prio, "width {width}");
            assert!(BatchSchedule::new(&g, by_policy.batches().to_vec(), width).is_ok());
        }
    }

    #[test]
    fn batches_with_width_one_is_the_sequential_schedule() {
        let g = diamond();
        let sched = crate::Schedule::new(&g, (0..4).map(NodeId).collect()).unwrap();
        let b = batches_with(&g, 1, &sched);
        let flat: Vec<NodeId> = b.batches().iter().flatten().copied().collect();
        assert_eq!(&flat, sched.order());
    }

    #[test]
    fn fill_round_leaves_claimed_tasks_out_of_the_pool() {
        let g = from_arcs(3, &[]).unwrap();
        let sched = crate::Schedule::new(&g, (0..3).map(NodeId).collect()).unwrap();
        let mut st = ExecState::new(&g);
        let round = fill_round(&mut st, &g, &sched, 2, 0, None);
        assert_eq!(round, vec![NodeId(0), NodeId(1)]);
        assert_eq!(st.pool_len(), 1, "claimed tasks leave the pool");
        assert!(st.is_eligible(NodeId(0)), "claimed tasks stay ELIGIBLE");
        // A short pool ends the round early.
        let rest = fill_round(&mut st, &g, &sched, 5, 2, None);
        assert_eq!(rest, vec![NodeId(2)]);
        assert_eq!(st.pool_len(), 0);
    }

    #[test]
    fn subsets_enumeration() {
        // mask with 3 bits, width 2 => C(3,2) = 3 subsets.
        assert_eq!(subsets_up_to(0b111, 2).len(), 3);
        // width >= popcount => just the mask itself.
        assert_eq!(subsets_up_to(0b101, 2), vec![0b101]);
        assert_eq!(subsets_up_to(0, 3), Vec::<u64>::new());
        // 4 bits choose 3 => 4.
        assert_eq!(subsets_up_to(0b1111, 3).len(), 4);
    }

    #[test]
    fn empty_dag_batches() {
        let g = from_arcs(0, &[]).unwrap();
        assert_eq!(min_rounds(&g, 3).unwrap(), 0);
        let opt = optimal_batches(&g, 3).unwrap();
        assert_eq!(opt.num_rounds(), 0);
    }
}
