//! Scalar quality metrics over eligibility profiles.
//!
//! IC-optimality is a *pointwise* criterion; when comparing schedules
//! that are not comparable pointwise (e.g. heuristics against each
//! other), scalar summaries are useful: the area under the profile (how
//! much eligibility the schedule offers over the whole run), the minimum
//! over the interior (worst-case starvation exposure), and the number of
//! steps at which a batch of `b` simultaneous requests could be served.

use std::cmp::Ordering;

/// Sum of `E(t)` over all `t` — the total "task availability" offered.
pub fn area_under(profile: &[usize]) -> u64 {
    profile.iter().map(|&e| e as u64).sum()
}

/// Does `p` dominate `q` pointwise (`p[t] >= q[t]` for all `t`)?
/// Requires equal lengths (profiles of the same dag).
pub fn dominates(p: &[usize], q: &[usize]) -> bool {
    p.len() == q.len() && p.iter().zip(q).all(|(&a, &b)| a >= b)
}

/// Pointwise comparison of equal-length profiles:
/// `Some(Greater)` if `p` dominates `q` with at least one strict step,
/// `Some(Less)` for the converse, `Some(Equal)` when identical, and
/// `None` when incomparable.
pub fn compare(p: &[usize], q: &[usize]) -> Option<Ordering> {
    if p.len() != q.len() {
        return None;
    }
    let mut ge = true;
    let mut le = true;
    for (&a, &b) in p.iter().zip(q) {
        ge &= a >= b;
        le &= a <= b;
        if !ge && !le {
            return None;
        }
    }
    match (ge, le) {
        (true, true) => Some(Ordering::Equal),
        (true, false) => Some(Ordering::Greater),
        (false, true) => Some(Ordering::Less),
        (false, false) => None,
    }
}

/// The minimum of `E(t)` over the *interior* steps `1..n` (excluding the
/// initial state and the empty final state): how close the execution
/// comes to gridlock.
pub fn min_interior(profile: &[usize]) -> usize {
    if profile.len() <= 2 {
        return profile.first().copied().unwrap_or(0);
    }
    profile[1..profile.len() - 1].iter().copied().min().unwrap()
}

/// The peak of the profile.
pub fn peak(profile: &[usize]) -> usize {
    profile.iter().copied().max().unwrap_or(0)
}

/// The number of steps `t` at which a batch of `batch` simultaneous
/// task requests could all be satisfied (`E(t) >= batch`). Models the
/// paper's scenario (2): a server receiving bursts of requests.
pub fn batch_satisfaction(profile: &[usize], batch: usize) -> usize {
    profile.iter().filter(|&&e| e >= batch).count()
}

/// A compact summary of a profile for report tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfileSummary {
    /// See [`area_under`].
    pub area: u64,
    /// See [`peak`].
    pub peak: usize,
    /// See [`min_interior`].
    pub min_interior: usize,
}

/// Summarize a profile.
pub fn summarize(profile: &[usize]) -> ProfileSummary {
    ProfileSummary {
        area: area_under(profile),
        peak: peak(profile),
        min_interior: min_interior(profile),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area() {
        assert_eq!(area_under(&[1, 2, 1, 0]), 4);
        assert_eq!(area_under(&[]), 0);
    }

    #[test]
    fn dominance() {
        assert!(dominates(&[2, 2, 1], &[2, 1, 1]));
        assert!(!dominates(&[2, 1, 1], &[2, 2, 1]));
        assert!(!dominates(&[2, 2], &[2, 2, 1])); // length mismatch
    }

    #[test]
    fn comparison_cases() {
        assert_eq!(compare(&[1, 2], &[1, 2]), Some(Ordering::Equal));
        assert_eq!(compare(&[2, 2], &[1, 2]), Some(Ordering::Greater));
        assert_eq!(compare(&[1, 1], &[1, 2]), Some(Ordering::Less));
        assert_eq!(compare(&[2, 1], &[1, 2]), None);
        assert_eq!(compare(&[1], &[1, 2]), None);
    }

    #[test]
    fn interior_minimum() {
        assert_eq!(min_interior(&[1, 3, 2, 0]), 2);
        assert_eq!(min_interior(&[5, 0]), 5); // no interior
        assert_eq!(min_interior(&[1, 1, 0]), 1);
    }

    #[test]
    fn batch_counts() {
        let p = [1, 2, 3, 2, 0];
        assert_eq!(batch_satisfaction(&p, 2), 3);
        assert_eq!(batch_satisfaction(&p, 4), 0);
        assert_eq!(batch_satisfaction(&p, 0), 5);
    }

    #[test]
    fn summary() {
        let s = summarize(&[1, 2, 1, 0]);
        assert_eq!(
            s,
            ProfileSummary {
                area: 4,
                peak: 2,
                min_interior: 1
            }
        );
    }
}
