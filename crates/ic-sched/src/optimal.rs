//! Exhaustive IC-optimality machinery.
//!
//! A schedule `Σ` for a dag `G` is **IC-optimal** when it maximizes the
//! number of ELIGIBLE nodes after *every* prefix of the execution — a
//! pointwise-maximal eligibility profile. Because the set of executed
//! nodes after `t` steps of any valid execution is exactly a size-`t`
//! down-set of the precedence order (and every down-set is reachable),
//! the optimal envelope
//!
//! ```text
//! opt(t) = max { #eligible(S) : S a down-set, |S| = t }
//! ```
//!
//! can be computed by sweeping the down-set lattice. `Σ` is IC-optimal
//! iff its profile equals `opt` pointwise, and `G` *admits* an
//! IC-optimal schedule iff some single execution path attains the whole
//! envelope. These checks are exponential in general (the lattice can be
//! large) but entirely practical for the building-block-sized dags used
//! to validate the paper's claims.

use std::collections::HashSet;

use ic_dag::ideals::IdealEnumerator;
use ic_dag::{Dag, NodeId};

use crate::error::SchedError;
use crate::schedule::Schedule;

/// The optimal envelope `opt(t)` for `t = 0 ..= n`.
///
/// Errors for dags of more than 64 nodes ([`ic_dag::DagError::TooLarge`]).
///
/// ```
/// use ic_dag::builder::from_arcs;
/// let diamond = from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
/// let env = ic_sched::optimal::optimal_envelope(&diamond).unwrap();
/// assert_eq!(env, vec![1, 2, 1, 1, 0]);
/// ```
pub fn optimal_envelope(dag: &Dag) -> Result<Vec<usize>, SchedError> {
    Ok(envelope_bounds(dag)?.1)
}

/// For every size `t`, the minimum and maximum eligible count over all
/// down-sets of size `t`: `(lo, hi)`. `hi` is the optimal envelope; when
/// `lo == hi` pointwise, *every* schedule is IC-optimal.
pub fn envelope_bounds(dag: &Dag) -> Result<(Vec<usize>, Vec<usize>), SchedError> {
    let n = dag.num_nodes();
    let en = IdealEnumerator::new(dag)?;
    let mut lo = vec![usize::MAX; n + 1];
    let mut hi = vec![0usize; n + 1];
    en.for_each(|_, size, elig| {
        let e = elig.count_ones() as usize;
        let t = size as usize;
        lo[t] = lo[t].min(e);
        hi[t] = hi[t].max(e);
    });
    Ok((lo, hi))
}

/// Is `schedule` IC-optimal for `dag`? (Exhaustive; `n <= 64`.)
pub fn is_ic_optimal(dag: &Dag, schedule: &Schedule) -> Result<bool, SchedError> {
    let envelope = optimal_envelope(dag)?;
    Ok(schedule.profile(dag) == envelope)
}

/// Does *every* schedule of `dag` achieve the optimal envelope — in the
/// strictest sense, quantifying over all execution orders including
/// those that execute sinks early? This is rarely true (executing a sink
/// wastes a step); the theory's "every schedule is IC optimal" claims
/// quantify over *nonsink orders* — see
/// [`every_nonsink_order_ic_optimal`].
pub fn every_schedule_ic_optimal(dag: &Dag) -> Result<bool, SchedError> {
    let (lo, hi) = envelope_bounds(dag)?;
    Ok(lo == hi)
}

/// The min/max eligible counts over down-sets consisting of *nonsinks
/// only* — the execution states reachable by "nonsinks-first" schedules,
/// the canonical form in which the theory states its results (executing
/// a sink renders nothing ELIGIBLE, so deferring all sinks never hurts).
/// Indexed by the number of nonsinks executed, `0 ..= num_nonsinks`.
pub fn nonsink_envelope_bounds(dag: &Dag) -> Result<(Vec<usize>, Vec<usize>), SchedError> {
    let n1 = dag.num_nonsinks();
    let en = IdealEnumerator::new(dag)?;
    let nonsink_mask = dag
        .nonsinks_mask()
        .expect("the enumerator already enforced the 64-node cap");
    let mut lo = vec![usize::MAX; n1 + 1];
    let mut hi = vec![0usize; n1 + 1];
    en.for_each_within(nonsink_mask, |_, size, elig| {
        let e = elig.count_ones() as usize;
        let t = size as usize;
        lo[t] = lo[t].min(e);
        hi[t] = hi[t].max(e);
    });
    Ok((lo, hi))
}

/// Is *every nonsink order* of `dag` IC-optimal? True for branching
/// out-trees (§3.1: "easily, every schedule for an out-tree is IC
/// optimal!" — in the theory's nonsinks-first convention).
pub fn every_nonsink_order_ic_optimal(dag: &Dag) -> Result<bool, SchedError> {
    let (lo, hi) = nonsink_envelope_bounds(dag)?;
    Ok(lo == hi)
}

/// Search for an IC-optimal schedule: an execution path whose every
/// prefix attains the envelope. Returns `None` when the dag admits no
/// IC-optimal schedule (many dags do not; see \[21\]).
///
/// ```
/// use ic_dag::builder::from_arcs;
/// use ic_sched::optimal::{find_ic_optimal, is_ic_optimal};
/// let g = from_arcs(3, &[(0, 1), (0, 2)]).unwrap();
/// let sched = find_ic_optimal(&g).unwrap().expect("Vee admits one");
/// assert!(is_ic_optimal(&g, &sched).unwrap());
/// ```
pub fn find_ic_optimal(dag: &Dag) -> Result<Option<Schedule>, SchedError> {
    let n = dag.num_nodes();
    let envelope = optimal_envelope(dag)?;
    let en = IdealEnumerator::new(dag)?;

    // Depth-first search over execution states, only stepping to states
    // on the envelope; dead states are memoized.
    let mut dead: HashSet<u64> = HashSet::new();
    let mut order: Vec<NodeId> = Vec::with_capacity(n);
    let eligible0 = en.eligible_mask(0);
    if dfs(&en, &envelope, n, 0u64, eligible0, 0, &mut order, &mut dead) {
        Ok(Some(Schedule::new(dag, order)?))
    } else {
        Ok(None)
    }
}

/// Does `dag` admit an IC-optimal schedule at all?
pub fn admits_ic_optimal(dag: &Dag) -> Result<bool, SchedError> {
    Ok(find_ic_optimal(dag)?.is_some())
}

/// The eligible mask rides along with the state, so each candidate step
/// costs `O(out-degree)` via the incremental update instead of two
/// from-scratch `eligible_mask` recomputations.
#[allow(clippy::too_many_arguments)]
fn dfs(
    en: &IdealEnumerator,
    envelope: &[usize],
    n: usize,
    state: u64,
    eligible: u64,
    t: usize,
    order: &mut Vec<NodeId>,
    dead: &mut HashSet<u64>,
) -> bool {
    if t == n {
        return true;
    }
    if dead.contains(&state) {
        return false;
    }
    let mut rest = eligible;
    while rest != 0 {
        let bit = rest & rest.wrapping_neg();
        rest ^= bit;
        let b = bit.trailing_zeros();
        let next_eligible = en.eligible_after(state, eligible, b);
        if (next_eligible.count_ones() as usize) == envelope[t + 1] {
            order.push(NodeId(b));
            if dfs(
                en,
                envelope,
                n,
                state | bit,
                next_eligible,
                t + 1,
                order,
                dead,
            ) {
                return true;
            }
            order.pop();
        }
    }
    dead.insert(state);
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_dag::builder::from_arcs;

    fn vee() -> Dag {
        from_arcs(3, &[(0, 1), (0, 2)]).unwrap()
    }

    fn lambda() -> Dag {
        from_arcs(3, &[(0, 2), (1, 2)]).unwrap()
    }

    #[test]
    fn vee_envelope() {
        assert_eq!(optimal_envelope(&vee()).unwrap(), vec![1, 2, 1, 0]);
    }

    #[test]
    fn lambda_envelope() {
        assert_eq!(optimal_envelope(&lambda()).unwrap(), vec![2, 1, 1, 0]);
    }

    #[test]
    fn every_schedule_optimal_for_vee_and_lambda() {
        assert!(every_schedule_ic_optimal(&vee()).unwrap());
        assert!(every_schedule_ic_optimal(&lambda()).unwrap());
    }

    #[test]
    fn not_every_schedule_optimal_for_two_lambdas() {
        // Two disjoint Lambdas: executing sources of different Lambdas
        // (profile stays 4, 3, 2...) is worse than finishing one Lambda's
        // pair first. opt after 2 steps = 3 (one sink + two sources),
        // but a bad schedule gets 2.
        let g = from_arcs(6, &[(0, 2), (1, 2), (3, 5), (4, 5)]).unwrap();
        assert!(!every_schedule_ic_optimal(&g).unwrap());
        // Yet an IC-optimal schedule exists: finish one pair, then the other.
        let s = find_ic_optimal(&g).unwrap().expect("exists");
        assert!(is_ic_optimal(&g, &s).unwrap());
    }

    #[test]
    fn diamond_optimal_schedule() {
        let g = from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let s = Schedule::in_id_order(&g);
        assert!(is_ic_optimal(&g, &s).unwrap());
    }

    #[test]
    fn dag_without_ic_optimal_schedule() {
        // Known example shape: two "interlocking" components where no
        // single schedule can dominate every prefix. Take G = Lambda + Vee
        // scaled: a 2-source N-like conflict. Construct: sources a, b;
        // a -> {x, y}; b alone feeds z... We build one where the envelope
        // is unattainable: G1 = Vee (root r, leaves l1, l2), G2 = Lambda
        // (sources s1, s2, sink k), disjoint.
        // opt(1): execute r => eligible = {l1, l2, s1, s2} = 4.
        // opt(2): execute s1, s2 => eligible = {r, k} ... that's 2;
        //   or r + s1 => {l1,l2,s2} = 3; or r,l1 => {l2,s1,s2}=3. opt(2)=3.
        // A single schedule: r first (4), then any => 3. opt(3): r,s1,s2
        // => {l1,l2,k} = 3. Schedule r,s1,s2 gives 4,3,3 — fine. Hmm,
        // this one *does* admit. Use the classic non-admitting example:
        // a 3-source Lambda (needs both orders of pair-completion).
        // Simplest documented non-admitter: two Lambdas sharing no nodes
        // PLUS a Vee, all disjoint, can conflict... Instead, verify a
        // concrete small non-admitter found by search:
        // G: sources a, b; arcs a->c, b->c, b->d (c, d sinks).
        // opt(1): exec b => {a, d} = 2. (exec a => {b} = 1.)
        // opt(2): exec a, b => {c, d} = 2; or b, d => {a} ... 1. so 2.
        // Schedule b first: profile(1) = 2 ok; then a: (2) = 2 ok; fine;
        // admits. Try harder: known minimal non-admitters have ~7 nodes;
        // search random dags for one instead.
        let mut found = None;
        'outer: for seed in 0..200u64 {
            // Tiny deterministic PRNG (xorshift) to build random dags.
            let mut s = seed.wrapping_mul(2654435769).wrapping_add(12345) | 1;
            let mut next = || {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                s
            };
            let n = 7;
            let mut arcs = Vec::new();
            for u in 0..n {
                for v in (u + 1)..n {
                    if next() % 100 < 35 {
                        arcs.push((u as u32, v as u32));
                    }
                }
            }
            let g = from_arcs(n, &arcs).unwrap();
            if !admits_ic_optimal(&g).unwrap() {
                found = Some(g);
                break 'outer;
            }
        }
        let g = found.expect("some random 7-node dag should admit no IC-optimal schedule");
        assert!(find_ic_optimal(&g).unwrap().is_none());
    }

    #[test]
    fn envelope_bounds_endpoints() {
        let g = vee();
        let (lo, hi) = envelope_bounds(&g).unwrap();
        assert_eq!(lo[0], hi[0]); // the empty prefix is unique
        assert_eq!(hi[0], g.num_sources());
        assert_eq!(lo[3], 0);
        assert_eq!(hi[3], 0);
    }

    #[test]
    fn found_schedule_is_valid_and_optimal() {
        let g = from_arcs(6, &[(0, 1), (0, 2), (1, 3), (2, 4), (3, 5), (4, 5)]).unwrap();
        if let Some(s) = find_ic_optimal(&g).unwrap() {
            assert!(is_ic_optimal(&g, &s).unwrap());
            assert_eq!(s.len(), g.num_nodes());
        }
    }
}
