//! Baseline dag-scheduling heuristics.
//!
//! The companion evaluations of IC-Scheduling Theory (\[15\], \[19\] in the
//! paper) compare its schedules against natural heuristics, including
//! the "FIFO" policy used by Condor's DAGMan. These serve as the
//! comparators in our simulator and benchmark harness.

use std::collections::VecDeque;

use ic_dag::rng::XorShift64;
use ic_dag::traversal::levels;
use ic_dag::{Dag, NodeId};

use crate::eligibility::ExecState;
use crate::schedule::Schedule;

/// A named scheduling policy over the ELIGIBLE pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Execute ELIGIBLE nodes in the order they became ELIGIBLE
    /// (Condor DAGMan's dag-scheduling order).
    Fifo,
    /// Execute the most recently ELIGIBLE node first.
    Lifo,
    /// Uniformly random ELIGIBLE node, from the given seed.
    Random(u64),
    /// The ELIGIBLE node with the most children (ties: smaller id).
    MaxOutDegree,
    /// The ELIGIBLE node at the smallest depth (ties: smaller id).
    MinDepth,
    /// One-step lookahead: the ELIGIBLE node that renders the most new
    /// nodes ELIGIBLE immediately (ties: larger out-degree, then smaller
    /// id).
    GreedyEligibility,
}

impl Policy {
    /// Short display name, for report tables.
    pub fn name(&self) -> &'static str {
        match self {
            Policy::Fifo => "FIFO",
            Policy::Lifo => "LIFO",
            Policy::Random(_) => "RANDOM",
            Policy::MaxOutDegree => "MAX-OUTDEG",
            Policy::MinDepth => "MIN-DEPTH",
            Policy::GreedyEligibility => "GREEDY",
        }
    }

    /// All policies with a fixed random seed — the standard comparator
    /// set.
    pub fn all(seed: u64) -> Vec<Policy> {
        vec![
            Policy::Fifo,
            Policy::Lifo,
            Policy::Random(seed),
            Policy::MaxOutDegree,
            Policy::MinDepth,
            Policy::GreedyEligibility,
        ]
    }
}

/// Produce the complete schedule that `policy` yields on `dag`.
pub fn schedule_with(dag: &Dag, policy: Policy) -> Schedule {
    match policy {
        Policy::Fifo => fifo(dag),
        Policy::Lifo => lifo(dag),
        Policy::Random(seed) => random(dag, seed),
        Policy::MaxOutDegree => {
            select_best(dag, |d, _st, v| (d.out_degree(v) as i64, -(v.0 as i64)))
        }
        Policy::MinDepth => {
            let lvl = levels(dag);
            select_best(dag, move |_d, _st, v| {
                (-(lvl[v.index()] as i64), -(v.0 as i64))
            })
        }
        Policy::GreedyEligibility => greedy_eligibility(dag),
    }
}

/// FIFO over the ELIGIBLE pool: sources enter in id order; newly
/// ELIGIBLE nodes are appended in id order.
pub fn fifo(dag: &Dag) -> Schedule {
    let mut st = ExecState::new(dag);
    let mut queue: VecDeque<NodeId> = dag.sources().collect();
    let mut order = Vec::with_capacity(dag.num_nodes());
    while let Some(v) = queue.pop_front() {
        let newly = st.execute(v).expect("FIFO only executes ELIGIBLE nodes");
        order.push(v);
        queue.extend(newly);
    }
    Schedule::new_unchecked(order)
}

/// LIFO over the ELIGIBLE pool: most recently enabled first.
pub fn lifo(dag: &Dag) -> Schedule {
    let mut st = ExecState::new(dag);
    let mut stack: Vec<NodeId> = dag.sources().collect();
    let mut order = Vec::with_capacity(dag.num_nodes());
    while let Some(v) = stack.pop() {
        let newly = st.execute(v).expect("LIFO only executes ELIGIBLE nodes");
        order.push(v);
        stack.extend(newly);
    }
    Schedule::new_unchecked(order)
}

/// Uniformly random ELIGIBLE node at every step (seeded, reproducible).
pub fn random(dag: &Dag, seed: u64) -> Schedule {
    let mut rng = XorShift64::new(seed);
    let mut st = ExecState::new(dag);
    let mut pool: Vec<NodeId> = dag.sources().collect();
    let mut order = Vec::with_capacity(dag.num_nodes());
    while !pool.is_empty() {
        let i = rng.gen_range(pool.len());
        let v = pool.swap_remove(i);
        let newly = st.execute(v).expect("pool holds only ELIGIBLE nodes");
        order.push(v);
        pool.extend(newly);
    }
    Schedule::new_unchecked(order)
}

/// Generic "pick the ELIGIBLE node maximizing a key" scheduler.
fn select_best(dag: &Dag, key: impl Fn(&Dag, &ExecState<'_>, NodeId) -> (i64, i64)) -> Schedule {
    let mut st = ExecState::new(dag);
    let mut pool: Vec<NodeId> = dag.sources().collect();
    let mut order = Vec::with_capacity(dag.num_nodes());
    while !pool.is_empty() {
        let (mut best_i, mut best_key) = (0usize, key(dag, &st, pool[0]));
        for (i, &v) in pool.iter().enumerate().skip(1) {
            let k = key(dag, &st, v);
            if k > best_key {
                best_i = i;
                best_key = k;
            }
        }
        let v = pool.swap_remove(best_i);
        let newly = st.execute(v).expect("pool holds only ELIGIBLE nodes");
        order.push(v);
        pool.extend(newly);
    }
    Schedule::new_unchecked(order)
}

/// One-step lookahead: maximize the number of children whose last
/// missing parent would be the executed node.
fn greedy_eligibility(dag: &Dag) -> Schedule {
    let mut st = ExecState::new(dag);
    let mut pool: Vec<NodeId> = dag.sources().collect();
    let mut order = Vec::with_capacity(dag.num_nodes());
    while !pool.is_empty() {
        let gain = |st: &ExecState<'_>, v: NodeId| -> i64 {
            dag.children(v)
                .iter()
                .filter(|&&c| {
                    // c becomes eligible iff v is its only unexecuted parent.
                    dag.parents(c).iter().all(|&p| p == v || st.is_executed(p))
                })
                .count() as i64
        };
        let (mut best_i, mut best) = (
            0usize,
            (
                gain(&st, pool[0]),
                dag.out_degree(pool[0]) as i64,
                -(pool[0].0 as i64),
            ),
        );
        for (i, &v) in pool.iter().enumerate().skip(1) {
            let k = (gain(&st, v), dag.out_degree(v) as i64, -(v.0 as i64));
            if k > best {
                best_i = i;
                best = k;
            }
        }
        let v = pool.swap_remove(best_i);
        let newly = st.execute(v).expect("pool holds only ELIGIBLE nodes");
        order.push(v);
        pool.extend(newly);
    }
    Schedule::new_unchecked(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_dag::builder::from_arcs;
    use ic_dag::traversal::is_topological;

    fn sample() -> Dag {
        from_arcs(
            8,
            &[
                (0, 2),
                (0, 3),
                (1, 3),
                (1, 4),
                (2, 5),
                (3, 5),
                (3, 6),
                (4, 7),
            ],
        )
        .unwrap()
    }

    #[test]
    fn all_policies_yield_valid_schedules() {
        let g = sample();
        for p in Policy::all(42) {
            let s = schedule_with(&g, p);
            assert!(
                is_topological(&g, s.order()),
                "{} produced an invalid order",
                p.name()
            );
            assert_eq!(s.len(), g.num_nodes());
        }
    }

    #[test]
    fn fifo_is_breadth_first_on_a_tree() {
        let t = from_arcs(7, &[(0, 1), (0, 2), (1, 3), (1, 4), (2, 5), (2, 6)]).unwrap();
        let s = fifo(&t);
        assert_eq!(s.order(), &[0, 1, 2, 3, 4, 5, 6].map(NodeId));
    }

    #[test]
    fn lifo_is_depth_first_on_a_tree() {
        let t = from_arcs(7, &[(0, 1), (0, 2), (1, 3), (1, 4), (2, 5), (2, 6)]).unwrap();
        let s = lifo(&t);
        // Root, then the most recently enabled branch fully.
        assert_eq!(s.order()[0], NodeId(0));
        assert_eq!(s.order()[1], NodeId(2));
    }

    #[test]
    fn random_is_reproducible() {
        let g = sample();
        assert_eq!(random(&g, 7).order(), random(&g, 7).order());
    }

    #[test]
    fn max_outdegree_prefers_hubs() {
        // Two sources: node 0 with 3 children, node 1 with 1 child.
        let g = from_arcs(6, &[(0, 2), (0, 3), (0, 4), (1, 5)]).unwrap();
        let s = schedule_with(&g, Policy::MaxOutDegree);
        assert_eq!(s.order()[0], NodeId(0));
    }

    #[test]
    fn greedy_takes_immediate_enablers() {
        // Source 0 enables nothing immediately (child 3 needs 1 too);
        // source 2 immediately enables its private child 4.
        let g = from_arcs(5, &[(0, 3), (1, 3), (2, 4)]).unwrap();
        let s = schedule_with(&g, Policy::GreedyEligibility);
        assert_eq!(s.order()[0], NodeId(2));
    }

    #[test]
    fn min_depth_is_levelwise() {
        let g = from_arcs(4, &[(0, 1), (1, 2), (0, 3)]).unwrap();
        let s = schedule_with(&g, Policy::MinDepth);
        // Level 0: {0}; level 1: {1, 3}; level 2: {2}.
        assert_eq!(s.order(), &[0, 1, 3, 2].map(NodeId));
    }

    #[test]
    fn policy_names_are_distinct() {
        let names: std::collections::HashSet<_> = Policy::all(0).iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), 6);
    }
}
