//! Baseline dag-scheduling heuristics.
//!
//! The companion evaluations of IC-Scheduling Theory (\[15\], \[19\] in the
//! paper) compare its schedules against natural heuristics, including
//! the "FIFO" policy used by Condor's DAGMan. These serve as the
//! comparators in our simulator and benchmark harness.
//!
//! Each heuristic is a variant of [`Policy`], which implements
//! [`AllocationPolicy`]; [`schedule_with`] drives any policy to a
//! complete static [`Schedule`], and `ic-sim` drives the same policies
//! dynamically against a stochastic client population.

use ic_dag::rng::XorShift64;
use ic_dag::traversal::levels;
use ic_dag::{Dag, NodeId};

use crate::eligibility::ExecState;
use crate::policy::{AllocationPolicy, PolicyContext};
use crate::schedule::Schedule;

/// The baseline allocation heuristics, as one enum for easy sweeping
/// ([`Policy::all`]). Custom policies implement [`AllocationPolicy`]
/// directly instead of extending this list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Execute ELIGIBLE nodes in the order they became ELIGIBLE
    /// (Condor DAGMan's dag-scheduling order).
    Fifo,
    /// Execute the most recently ELIGIBLE node first.
    Lifo,
    /// Uniformly random ELIGIBLE node, from the given seed.
    Random(u64),
    /// The ELIGIBLE node with the most children (ties: smaller id).
    MaxOutDegree,
    /// The ELIGIBLE node at the smallest depth (ties: smaller id).
    MinDepth,
    /// One-step lookahead: the ELIGIBLE node that renders the most new
    /// nodes ELIGIBLE immediately (ties: larger out-degree, then smaller
    /// id).
    GreedyEligibility,
}

impl Policy {
    /// Short display name, for report tables.
    pub fn name(&self) -> &'static str {
        match self {
            Policy::Fifo => "FIFO",
            Policy::Lifo => "LIFO",
            Policy::Random(_) => "RANDOM",
            Policy::MaxOutDegree => "MAX-OUTDEG",
            Policy::MinDepth => "MIN-DEPTH",
            Policy::GreedyEligibility => "GREEDY",
        }
    }

    /// All policies with a fixed random seed — the standard comparator
    /// set.
    pub fn all(seed: u64) -> Vec<Policy> {
        vec![
            Policy::Fifo,
            Policy::Lifo,
            Policy::Random(seed),
            Policy::MaxOutDegree,
            Policy::MinDepth,
            Policy::GreedyEligibility,
        ]
    }
}

/// Index of the pool entry maximizing `key` (keys are unique per node
/// whenever they end in `-id`, so scan order does not matter).
fn argmax<K: Ord>(pool: &[NodeId], key: impl Fn(NodeId) -> K) -> usize {
    let (mut best_i, mut best) = (0usize, key(pool[0]));
    for (i, &v) in pool.iter().enumerate().skip(1) {
        let k = key(v);
        if k > best {
            best_i = i;
            best = k;
        }
    }
    best_i
}

/// How many children of `v` become ELIGIBLE the moment `v` executes.
fn eligibility_gain(dag: &Dag, st: &ExecState<'_>, v: NodeId) -> i64 {
    dag.children(v)
        .iter()
        .filter(|&&c| {
            // c becomes eligible iff v is its only unexecuted parent.
            dag.parents(c).iter().all(|&p| p == v || st.is_executed(p))
        })
        .count() as i64
}

impl AllocationPolicy for Policy {
    fn name(&self) -> String {
        Policy::name(self).into()
    }

    fn choose(&self, ctx: &PolicyContext<'_, '_>, pool: &[NodeId]) -> usize {
        match *self {
            // The pool is maintained by swap-removal, so positional order
            // no longer encodes arrival order; the per-entry arrival
            // stamp does. Stamps are unique, so both picks are exact.
            Policy::Fifo => argmax(pool, |v| std::cmp::Reverse(ctx.state.pool_seq(v))),
            Policy::Lifo => argmax(pool, |v| ctx.state.pool_seq(v)),
            // Stateless randomness: the stream is a pure function of
            // (seed, step), so the policy replays identically without
            // interior mutability.
            Policy::Random(seed) => {
                let mix = (ctx.step as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                XorShift64::new(seed ^ mix).gen_range(pool.len())
            }
            Policy::MaxOutDegree => argmax(pool, |v| (ctx.dag.out_degree(v) as i64, -(v.0 as i64))),
            Policy::MinDepth => {
                let lvl = levels(ctx.dag);
                argmax(pool, |v| (-(lvl[v.index()] as i64), -(v.0 as i64)))
            }
            Policy::GreedyEligibility => argmax(pool, |v| {
                (
                    eligibility_gain(ctx.dag, ctx.state, v),
                    ctx.dag.out_degree(v) as i64,
                    -(v.0 as i64),
                )
            }),
        }
    }
}

/// Produce the complete schedule that `policy` yields on `dag`: drive
/// the policy over [`ExecState`]'s built-in eligible pool (newly enabled
/// nodes enter in id order; arrival stamps preserve became-ELIGIBLE
/// order) one task at a time.
///
/// # Panics
/// Panics if `policy.choose` returns an out-of-range index or the
/// policy's [`AllocationPolicy::prepare`] rejects the dag.
pub fn schedule_with(dag: &Dag, policy: &dyn AllocationPolicy) -> Schedule {
    policy.prepare(dag);
    let mut st = ExecState::new(dag);
    let mut order = Vec::with_capacity(dag.num_nodes());
    let mut step = 0usize;
    while st.pool_len() > 0 {
        let i = policy.choose(
            &PolicyContext {
                dag,
                state: &st,
                step,
                retries: None,
            },
            st.pool(),
        );
        let v = st.pool()[i];
        st.execute_counting(v)
            .expect("pool holds only ELIGIBLE nodes");
        order.push(v);
        step += 1;
    }
    Schedule::new_unchecked(order)
}

/// FIFO over the ELIGIBLE pool: sources enter in id order; newly
/// ELIGIBLE nodes are appended in id order.
pub fn fifo(dag: &Dag) -> Schedule {
    schedule_with(dag, &Policy::Fifo)
}

/// LIFO over the ELIGIBLE pool: most recently enabled first.
pub fn lifo(dag: &Dag) -> Schedule {
    schedule_with(dag, &Policy::Lifo)
}

/// Uniformly random ELIGIBLE node at every step (seeded, reproducible).
pub fn random(dag: &Dag, seed: u64) -> Schedule {
    schedule_with(dag, &Policy::Random(seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_dag::builder::from_arcs;
    use ic_dag::traversal::is_topological;

    fn sample() -> Dag {
        from_arcs(
            8,
            &[
                (0, 2),
                (0, 3),
                (1, 3),
                (1, 4),
                (2, 5),
                (3, 5),
                (3, 6),
                (4, 7),
            ],
        )
        .unwrap()
    }

    #[test]
    fn all_policies_yield_valid_schedules() {
        let g = sample();
        for p in Policy::all(42) {
            let s = schedule_with(&g, &p);
            assert!(
                is_topological(&g, s.order()),
                "{} produced an invalid order",
                p.name()
            );
            assert_eq!(s.len(), g.num_nodes());
        }
    }

    #[test]
    fn fifo_is_breadth_first_on_a_tree() {
        let t = from_arcs(7, &[(0, 1), (0, 2), (1, 3), (1, 4), (2, 5), (2, 6)]).unwrap();
        let s = fifo(&t);
        assert_eq!(s.order(), &[0, 1, 2, 3, 4, 5, 6].map(NodeId));
    }

    #[test]
    fn lifo_is_depth_first_on_a_tree() {
        let t = from_arcs(7, &[(0, 1), (0, 2), (1, 3), (1, 4), (2, 5), (2, 6)]).unwrap();
        let s = lifo(&t);
        // Root, then the most recently enabled branch fully.
        assert_eq!(s.order()[0], NodeId(0));
        assert_eq!(s.order()[1], NodeId(2));
    }

    #[test]
    fn random_is_reproducible() {
        let g = sample();
        assert_eq!(random(&g, 7).order(), random(&g, 7).order());
    }

    #[test]
    fn random_seeds_differ() {
        let g = sample();
        // Not a hard guarantee for arbitrary seeds, but these two must
        // differ or the (seed, step) mixing is broken.
        assert_ne!(random(&g, 1).order(), random(&g, 0xDEAD_BEEF).order());
    }

    #[test]
    fn max_outdegree_prefers_hubs() {
        // Two sources: node 0 with 3 children, node 1 with 1 child.
        let g = from_arcs(6, &[(0, 2), (0, 3), (0, 4), (1, 5)]).unwrap();
        let s = schedule_with(&g, &Policy::MaxOutDegree);
        assert_eq!(s.order()[0], NodeId(0));
    }

    #[test]
    fn greedy_takes_immediate_enablers() {
        // Source 0 enables nothing immediately (child 3 needs 1 too);
        // source 2 immediately enables its private child 4.
        let g = from_arcs(5, &[(0, 3), (1, 3), (2, 4)]).unwrap();
        let s = schedule_with(&g, &Policy::GreedyEligibility);
        assert_eq!(s.order()[0], NodeId(2));
    }

    #[test]
    fn min_depth_is_levelwise() {
        let g = from_arcs(4, &[(0, 1), (1, 2), (0, 3)]).unwrap();
        let s = schedule_with(&g, &Policy::MinDepth);
        // Level 0: {0}; level 1: {1, 3}; level 2: {2}.
        assert_eq!(s.order(), &[0, 1, 3, 2].map(NodeId));
    }

    #[test]
    fn policy_names_are_distinct() {
        let names: std::collections::HashSet<_> = Policy::all(0).iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn schedule_as_policy_reproduces_itself() {
        let g = sample();
        let s = fifo(&g);
        let replayed = schedule_with(&g, &s);
        assert_eq!(replayed.order(), s.order());
    }
}
