//! Execution state and ELIGIBLE-set maintenance (§2.2 of the paper).
//!
//! When one executes a computation-dag, a node is ELIGIBLE only after
//! all of its parents have been executed (so every source is initially
//! ELIGIBLE); executing a node removes its ELIGIBLE status permanently
//! and may render children ELIGIBLE. Time is event-driven: it advances
//! by one per node execution.
//!
//! # The allocation pool
//!
//! Besides the boolean ELIGIBLE flags, [`ExecState`] maintains a *dense
//! pool* of the ELIGIBLE nodes that have not been handed to a worker: a
//! swap-remove index vector plus a position map, so allocation-time
//! operations are `O(1)` and never scale with the dag:
//!
//! * [`ExecState::pool`] — borrow the candidates as a slice, `O(1)`;
//! * [`ExecState::claim_at`] / [`ExecState::claim`] — take a node out of
//!   the pool (allocated to a worker, still ELIGIBLE), `O(1)`;
//! * [`ExecState::unclaim`] — put a claimed node back (worker failed or
//!   the lease was forfeited), `O(1)`;
//! * [`ExecState::execute`] — complete a node (pooled or claimed); newly
//!   ELIGIBLE children enter the pool in increasing id order.
//!
//! Swap-removal perturbs the pool's order, so policies that care about
//! *when* a node became available (FIFO/LIFO) order by
//! [`ExecState::pool_seq`], a monotone stamp assigned each time a node
//! enters the pool.

use ic_dag::{Dag, NodeId};

use crate::error::SchedError;

/// Sentinel for "not in the pool" in the position map.
const NOT_POOLED: u32 = u32::MAX;

/// Mutable execution state of a dag: which nodes have been executed,
/// which are currently ELIGIBLE, and which of those are still in the
/// allocation pool.
///
/// ```
/// use ic_dag::builder::from_arcs;
/// use ic_sched::eligibility::ExecState;
/// use ic_dag::NodeId;
///
/// let diamond = from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
/// let mut st = ExecState::new(&diamond);
/// assert_eq!(st.eligible_count(), 1);
/// let newly = st.execute(NodeId(0)).unwrap();
/// assert_eq!(newly, vec![NodeId(1), NodeId(2)]);
/// assert_eq!(st.eligible_count(), 2);
/// assert_eq!(st.pool(), &[NodeId(1), NodeId(2)]);
/// ```
#[derive(Debug, Clone)]
pub struct ExecState<'a> {
    dag: &'a Dag,
    executed: Vec<bool>,
    eligible: Vec<bool>,
    /// Number of unexecuted parents per node.
    missing_parents: Vec<u32>,
    num_executed: usize,
    eligible_count: usize,
    /// ELIGIBLE nodes not claimed by a worker; order is arbitrary
    /// (swap-remove) but [`ExecState::pool_seq`] recovers arrival order.
    pool: Vec<NodeId>,
    /// `pos[v]` = index of `v` in `pool`, or [`NOT_POOLED`].
    pos: Vec<u32>,
    /// `seq[v]` = stamp of `v`'s latest pool entry (monotone counter).
    seq: Vec<u64>,
    next_seq: u64,
}

impl<'a> ExecState<'a> {
    /// Fresh state: nothing executed, exactly the sources ELIGIBLE and
    /// pooled (in increasing id order).
    pub fn new(dag: &'a Dag) -> Self {
        let n = dag.num_nodes();
        let mut st = ExecState {
            dag,
            executed: vec![false; n],
            eligible: vec![false; n],
            missing_parents: vec![0u32; n],
            num_executed: 0,
            eligible_count: 0,
            pool: Vec::new(),
            pos: vec![NOT_POOLED; n],
            seq: vec![0u64; n],
            next_seq: 0,
        };
        for v in dag.node_ids() {
            st.missing_parents[v.index()] = dag.in_degree(v) as u32;
            if dag.is_source(v) {
                st.eligible[v.index()] = true;
                st.eligible_count += 1;
                st.push_pool(v);
            }
        }
        st
    }

    /// The dag being executed.
    pub fn dag(&self) -> &Dag {
        self.dag
    }

    /// Has `v` been executed?
    #[inline]
    pub fn is_executed(&self, v: NodeId) -> bool {
        self.executed[v.index()]
    }

    /// Is `v` currently ELIGIBLE (unexecuted, all parents executed)?
    /// Claimed nodes remain ELIGIBLE until executed or unclaimed.
    #[inline]
    pub fn is_eligible(&self, v: NodeId) -> bool {
        self.eligible[v.index()]
    }

    /// Is `v` in the allocation pool (ELIGIBLE and not claimed)?
    #[inline]
    pub fn is_pooled(&self, v: NodeId) -> bool {
        self.pos[v.index()] != NOT_POOLED
    }

    /// Number of currently ELIGIBLE nodes — the paper's quality measure
    /// at this instant. Includes claimed nodes.
    #[inline]
    pub fn eligible_count(&self) -> usize {
        self.eligible_count
    }

    /// Number of nodes executed so far (the event-driven clock).
    #[inline]
    pub fn num_executed(&self) -> usize {
        self.num_executed
    }

    /// Are all nodes executed?
    pub fn is_complete(&self) -> bool {
        self.num_executed == self.dag.num_nodes()
    }

    /// The allocation pool: ELIGIBLE nodes not claimed by any worker, as
    /// an `O(1)` slice borrow. The order is an artifact of swap-removal;
    /// use [`ExecState::pool_seq`] to order by arrival.
    #[inline]
    pub fn pool(&self) -> &[NodeId] {
        &self.pool
    }

    /// Number of pooled nodes.
    #[inline]
    pub fn pool_len(&self) -> usize {
        self.pool.len()
    }

    /// Monotone stamp of `v`'s latest entry into the pool: of two pooled
    /// nodes, the one with the smaller stamp became available earlier.
    /// Meaningful only while `v` is pooled or claimed.
    #[inline]
    pub fn pool_seq(&self, v: NodeId) -> u64 {
        self.seq[v.index()]
    }

    /// The currently ELIGIBLE nodes, in increasing id order. Includes
    /// claimed nodes — this is the paper's ELIGIBLE set, not the pool.
    /// `O(n)` filter + allocation; hot paths should borrow
    /// [`ExecState::pool`] instead.
    pub fn eligible_nodes(&self) -> Vec<NodeId> {
        self.dag
            .node_ids()
            .filter(|v| self.eligible[v.index()])
            .collect()
    }

    /// Claim the pooled node at pool index `i` for a worker: removes it
    /// from the pool in `O(1)` (swap-remove) and returns it. The node
    /// stays ELIGIBLE. This is the allocation fast path — policies pick
    /// an index into [`ExecState::pool`] and the driver claims it.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds, like slice indexing.
    pub fn claim_at(&mut self, i: usize) -> NodeId {
        let v = self.pool[i];
        self.remove_pool_at(i);
        v
    }

    /// Claim a specific pooled node for a worker. `O(1)`.
    ///
    /// Errors if `v` is not ELIGIBLE, or is ELIGIBLE but already claimed.
    pub fn claim(&mut self, v: NodeId) -> Result<(), SchedError> {
        if self.executed[v.index()] {
            return Err(SchedError::AlreadyExecuted(v));
        }
        if !self.eligible[v.index()] {
            return Err(SchedError::NotEligible(v));
        }
        let i = self.pos[v.index()];
        if i == NOT_POOLED {
            return Err(SchedError::NotPooled(v));
        }
        self.remove_pool_at(i as usize);
        Ok(())
    }

    /// Return a claimed node to the pool (its worker failed, or the
    /// coordinator forfeited the lease). The node receives a fresh
    /// [`ExecState::pool_seq`] stamp — it re-enters the queue as the
    /// newest arrival. `O(1)`.
    ///
    /// Errors if `v` is not ELIGIBLE (never claimed, or already executed)
    /// or is already pooled.
    pub fn unclaim(&mut self, v: NodeId) -> Result<(), SchedError> {
        if self.executed[v.index()] {
            return Err(SchedError::AlreadyExecuted(v));
        }
        if !self.eligible[v.index()] {
            return Err(SchedError::NotEligible(v));
        }
        if self.pos[v.index()] != NOT_POOLED {
            return Err(SchedError::AlreadyPooled(v));
        }
        self.push_pool(v);
        Ok(())
    }

    /// Execute `v` (pooled or claimed). Returns the nodes *newly rendered
    /// ELIGIBLE* by this execution (those whose last missing parent was
    /// `v`), in increasing id order; they enter the pool in that order.
    ///
    /// Errors if `v` is already executed or not ELIGIBLE.
    pub fn execute(&mut self, v: NodeId) -> Result<Vec<NodeId>, SchedError> {
        let mut newly = Vec::new();
        self.execute_with(v, |c| newly.push(c))?;
        Ok(newly)
    }

    /// Allocation-free variant of [`ExecState::execute`]: returns only
    /// *how many* nodes this execution rendered ELIGIBLE. Drivers that
    /// read the pool afterwards (everything is auto-pooled) should prefer
    /// this on hot paths.
    pub fn execute_counting(&mut self, v: NodeId) -> Result<usize, SchedError> {
        let mut k = 0usize;
        self.execute_with(v, |_| k += 1)?;
        Ok(k)
    }

    /// Shared execution core: validates, flips flags, pools newly
    /// ELIGIBLE children in increasing id order, and reports each to
    /// `on_newly`.
    fn execute_with(
        &mut self,
        v: NodeId,
        mut on_newly: impl FnMut(NodeId),
    ) -> Result<(), SchedError> {
        if self.executed[v.index()] {
            return Err(SchedError::AlreadyExecuted(v));
        }
        if !self.eligible[v.index()] {
            return Err(SchedError::NotEligible(v));
        }
        let i = self.pos[v.index()];
        if i != NOT_POOLED {
            self.remove_pool_at(i as usize);
        }
        self.executed[v.index()] = true;
        self.eligible[v.index()] = false;
        self.eligible_count -= 1;
        self.num_executed += 1;
        // Children slices are sorted by id, so arrivals are in id order.
        for ci in 0..self.dag.children(v).len() {
            let c = self.dag.children(v)[ci];
            self.missing_parents[c.index()] -= 1;
            if self.missing_parents[c.index()] == 0 {
                self.eligible[c.index()] = true;
                self.eligible_count += 1;
                self.push_pool(c);
                on_newly(c);
            }
        }
        Ok(())
    }

    /// Append `v` to the pool with a fresh arrival stamp.
    fn push_pool(&mut self, v: NodeId) {
        self.pos[v.index()] = self.pool.len() as u32;
        self.seq[v.index()] = self.next_seq;
        self.next_seq += 1;
        self.pool.push(v);
    }

    /// Swap-remove the pool entry at index `i`, fixing up the position
    /// map of the displaced last element.
    fn remove_pool_at(&mut self, i: usize) {
        let v = self.pool.swap_remove(i);
        self.pos[v.index()] = NOT_POOLED;
        if let Some(&moved) = self.pool.get(i) {
            self.pos[moved.index()] = i as u32;
        }
    }
}

/// The ELIGIBLE set computed straight from the paper's definition
/// (§2.2): a node is ELIGIBLE iff it is unexecuted and every parent is
/// executed. `executed[v]` indexes by node id; indices past its length
/// count as unexecuted.
///
/// This is the *oracle* form — `O(nodes + arcs)` per call, independent
/// of [`ExecState`]'s incremental bookkeeping — used by differential
/// tests and the `ic-check` model checker to validate the incremental
/// state against the definition at every explored state.
///
/// ```
/// use ic_dag::builder::from_arcs;
/// use ic_dag::NodeId;
/// use ic_sched::eligibility::eligible_from_executed;
///
/// let diamond = from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
/// assert_eq!(eligible_from_executed(&diamond, &[]), vec![NodeId(0)]);
/// assert_eq!(
///     eligible_from_executed(&diamond, &[true]),
///     vec![NodeId(1), NodeId(2)]
/// );
/// ```
pub fn eligible_from_executed(dag: &Dag, executed: &[bool]) -> Vec<NodeId> {
    let done = |v: NodeId| executed.get(v.index()).copied().unwrap_or(false);
    dag.node_ids()
        .filter(|&v| !done(v) && dag.parents(v).iter().all(|&p| done(p)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_dag::builder::from_arcs;

    #[test]
    fn initial_state_has_sources_eligible() {
        let g = from_arcs(5, &[(0, 2), (1, 2), (2, 3), (2, 4)]).unwrap();
        let st = ExecState::new(&g);
        assert_eq!(st.eligible_nodes(), vec![NodeId(0), NodeId(1)]);
        assert_eq!(st.pool(), &[NodeId(0), NodeId(1)]);
        assert_eq!(st.eligible_count(), 2);
        assert_eq!(st.num_executed(), 0);
        assert!(!st.is_complete());
    }

    #[test]
    fn execute_non_eligible_fails() {
        let g = from_arcs(2, &[(0, 1)]).unwrap();
        let mut st = ExecState::new(&g);
        assert_eq!(
            st.execute(NodeId(1)),
            Err(SchedError::NotEligible(NodeId(1)))
        );
    }

    #[test]
    fn double_execute_fails() {
        let g = from_arcs(2, &[(0, 1)]).unwrap();
        let mut st = ExecState::new(&g);
        st.execute(NodeId(0)).unwrap();
        assert_eq!(
            st.execute(NodeId(0)),
            Err(SchedError::AlreadyExecuted(NodeId(0)))
        );
    }

    #[test]
    fn last_parent_triggers_eligibility() {
        let g = from_arcs(3, &[(0, 2), (1, 2)]).unwrap();
        let mut st = ExecState::new(&g);
        assert_eq!(st.execute(NodeId(0)).unwrap(), vec![]);
        assert!(!st.is_eligible(NodeId(2)));
        assert_eq!(st.execute(NodeId(1)).unwrap(), vec![NodeId(2)]);
        assert!(st.is_eligible(NodeId(2)));
        assert!(st.is_pooled(NodeId(2)));
    }

    #[test]
    fn full_run_completes() {
        let g = from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let mut st = ExecState::new(&g);
        for v in [0u32, 1, 2, 3] {
            st.execute(NodeId(v)).unwrap();
        }
        assert!(st.is_complete());
        assert_eq!(st.eligible_count(), 0);
        assert!(st.pool().is_empty());
    }

    #[test]
    fn executed_node_loses_eligibility() {
        let g = from_arcs(2, &[]).unwrap();
        let mut st = ExecState::new(&g);
        assert!(st.is_eligible(NodeId(0)));
        st.execute(NodeId(0)).unwrap();
        assert!(!st.is_eligible(NodeId(0)));
        assert!(st.is_executed(NodeId(0)));
        assert_eq!(st.eligible_count(), 1);
    }

    #[test]
    fn claim_removes_from_pool_but_not_eligibility() {
        let g = from_arcs(3, &[(0, 1), (0, 2)]).unwrap();
        let mut st = ExecState::new(&g);
        st.execute(NodeId(0)).unwrap();
        assert_eq!(st.pool_len(), 2);
        st.claim(NodeId(1)).unwrap();
        assert!(st.is_eligible(NodeId(1)));
        assert!(!st.is_pooled(NodeId(1)));
        assert_eq!(st.pool(), &[NodeId(2)]);
        // ELIGIBLE set still counts the claimed node.
        assert_eq!(st.eligible_count(), 2);
        assert_eq!(st.eligible_nodes(), vec![NodeId(1), NodeId(2)]);
        // Double-claim is rejected; executing the claimed node works.
        assert_eq!(st.claim(NodeId(1)), Err(SchedError::NotPooled(NodeId(1))));
        st.execute(NodeId(1)).unwrap();
        assert!(st.is_executed(NodeId(1)));
    }

    #[test]
    fn unclaim_restamps_as_newest() {
        let g = from_arcs(3, &[]).unwrap();
        let mut st = ExecState::new(&g);
        let s0 = st.pool_seq(NodeId(0));
        assert!(s0 < st.pool_seq(NodeId(1)));
        st.claim(NodeId(0)).unwrap();
        st.unclaim(NodeId(0)).unwrap();
        // Returned node is now the newest arrival.
        assert!(st.pool_seq(NodeId(0)) > st.pool_seq(NodeId(2)));
        assert_eq!(st.pool_len(), 3);
        assert_eq!(
            st.unclaim(NodeId(0)),
            Err(SchedError::AlreadyPooled(NodeId(0)))
        );
        assert_eq!(
            st.unclaim(NodeId(1)),
            Err(SchedError::AlreadyPooled(NodeId(1)))
        );
    }

    #[test]
    fn claim_at_pops_by_index() {
        let g = from_arcs(4, &[]).unwrap();
        let mut st = ExecState::new(&g);
        let v = st.claim_at(1);
        assert_eq!(v, NodeId(1));
        assert_eq!(st.pool_len(), 3);
        assert!(!st.is_pooled(v));
        // Swap-remove moved the last entry into slot 1; position map must
        // still agree with the pool vector.
        for (i, &w) in st.pool().iter().enumerate() {
            assert_eq!(st.pos[w.index()], i as u32);
        }
    }

    #[test]
    fn execute_counting_matches_execute() {
        let g = from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let mut a = ExecState::new(&g);
        let mut b = ExecState::new(&g);
        for v in [0u32, 1, 2, 3] {
            let newly = a.execute(NodeId(v)).unwrap();
            let k = b.execute_counting(NodeId(v)).unwrap();
            assert_eq!(newly.len(), k);
            assert_eq!(a.pool(), b.pool());
        }
    }

    #[test]
    fn unclaim_rejects_unexecutable_nodes() {
        let g = from_arcs(2, &[(0, 1)]).unwrap();
        let mut st = ExecState::new(&g);
        assert_eq!(
            st.unclaim(NodeId(1)),
            Err(SchedError::NotEligible(NodeId(1)))
        );
        st.execute(NodeId(0)).unwrap();
        assert_eq!(
            st.unclaim(NodeId(0)),
            Err(SchedError::AlreadyExecuted(NodeId(0)))
        );
    }
}
