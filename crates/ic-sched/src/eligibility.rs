//! Execution state and ELIGIBLE-set maintenance (§2.2 of the paper).
//!
//! When one executes a computation-dag, a node is ELIGIBLE only after
//! all of its parents have been executed (so every source is initially
//! ELIGIBLE); executing a node removes its ELIGIBLE status permanently
//! and may render children ELIGIBLE. Time is event-driven: it advances
//! by one per node execution.

use ic_dag::{Dag, NodeId};

use crate::error::SchedError;

/// Mutable execution state of a dag: which nodes have been executed and
/// which are currently ELIGIBLE.
///
/// ```
/// use ic_dag::builder::from_arcs;
/// use ic_sched::eligibility::ExecState;
/// use ic_dag::NodeId;
///
/// let diamond = from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
/// let mut st = ExecState::new(&diamond);
/// assert_eq!(st.eligible_count(), 1);
/// let newly = st.execute(NodeId(0)).unwrap();
/// assert_eq!(newly, vec![NodeId(1), NodeId(2)]);
/// assert_eq!(st.eligible_count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct ExecState<'a> {
    dag: &'a Dag,
    executed: Vec<bool>,
    eligible: Vec<bool>,
    /// Number of unexecuted parents per node.
    missing_parents: Vec<u32>,
    num_executed: usize,
    eligible_count: usize,
}

impl<'a> ExecState<'a> {
    /// Fresh state: nothing executed, exactly the sources ELIGIBLE.
    pub fn new(dag: &'a Dag) -> Self {
        let n = dag.num_nodes();
        let mut eligible = vec![false; n];
        let mut eligible_count = 0;
        let mut missing_parents = vec![0u32; n];
        for v in dag.node_ids() {
            missing_parents[v.index()] = dag.in_degree(v) as u32;
            if dag.is_source(v) {
                eligible[v.index()] = true;
                eligible_count += 1;
            }
        }
        ExecState {
            dag,
            executed: vec![false; n],
            eligible,
            missing_parents,
            num_executed: 0,
            eligible_count,
        }
    }

    /// The dag being executed.
    pub fn dag(&self) -> &Dag {
        self.dag
    }

    /// Has `v` been executed?
    #[inline]
    pub fn is_executed(&self, v: NodeId) -> bool {
        self.executed[v.index()]
    }

    /// Is `v` currently ELIGIBLE (unexecuted, all parents executed)?
    #[inline]
    pub fn is_eligible(&self, v: NodeId) -> bool {
        self.eligible[v.index()]
    }

    /// Number of currently ELIGIBLE nodes — the paper's quality measure
    /// at this instant.
    #[inline]
    pub fn eligible_count(&self) -> usize {
        self.eligible_count
    }

    /// Number of nodes executed so far (the event-driven clock).
    #[inline]
    pub fn num_executed(&self) -> usize {
        self.num_executed
    }

    /// Are all nodes executed?
    pub fn is_complete(&self) -> bool {
        self.num_executed == self.dag.num_nodes()
    }

    /// The currently ELIGIBLE nodes, in increasing id order.
    pub fn eligible_nodes(&self) -> Vec<NodeId> {
        self.dag
            .node_ids()
            .filter(|v| self.eligible[v.index()])
            .collect()
    }

    /// Execute `v`. Returns the nodes *newly rendered ELIGIBLE* by this
    /// execution (those whose last missing parent was `v`), in
    /// increasing id order.
    ///
    /// Errors if `v` is already executed or not ELIGIBLE.
    pub fn execute(&mut self, v: NodeId) -> Result<Vec<NodeId>, SchedError> {
        if self.executed[v.index()] {
            return Err(SchedError::AlreadyExecuted(v));
        }
        if !self.eligible[v.index()] {
            return Err(SchedError::NotEligible(v));
        }
        self.executed[v.index()] = true;
        self.eligible[v.index()] = false;
        self.eligible_count -= 1;
        self.num_executed += 1;
        let mut newly = Vec::new();
        for &c in self.dag.children(v) {
            self.missing_parents[c.index()] -= 1;
            if self.missing_parents[c.index()] == 0 {
                self.eligible[c.index()] = true;
                self.eligible_count += 1;
                newly.push(c);
            }
        }
        Ok(newly)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_dag::builder::from_arcs;

    #[test]
    fn initial_state_has_sources_eligible() {
        let g = from_arcs(5, &[(0, 2), (1, 2), (2, 3), (2, 4)]).unwrap();
        let st = ExecState::new(&g);
        assert_eq!(st.eligible_nodes(), vec![NodeId(0), NodeId(1)]);
        assert_eq!(st.eligible_count(), 2);
        assert_eq!(st.num_executed(), 0);
        assert!(!st.is_complete());
    }

    #[test]
    fn execute_non_eligible_fails() {
        let g = from_arcs(2, &[(0, 1)]).unwrap();
        let mut st = ExecState::new(&g);
        assert_eq!(
            st.execute(NodeId(1)),
            Err(SchedError::NotEligible(NodeId(1)))
        );
    }

    #[test]
    fn double_execute_fails() {
        let g = from_arcs(2, &[(0, 1)]).unwrap();
        let mut st = ExecState::new(&g);
        st.execute(NodeId(0)).unwrap();
        assert_eq!(
            st.execute(NodeId(0)),
            Err(SchedError::AlreadyExecuted(NodeId(0)))
        );
    }

    #[test]
    fn last_parent_triggers_eligibility() {
        let g = from_arcs(3, &[(0, 2), (1, 2)]).unwrap();
        let mut st = ExecState::new(&g);
        assert_eq!(st.execute(NodeId(0)).unwrap(), vec![]);
        assert!(!st.is_eligible(NodeId(2)));
        assert_eq!(st.execute(NodeId(1)).unwrap(), vec![NodeId(2)]);
        assert!(st.is_eligible(NodeId(2)));
    }

    #[test]
    fn full_run_completes() {
        let g = from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let mut st = ExecState::new(&g);
        for v in [0u32, 1, 2, 3] {
            st.execute(NodeId(v)).unwrap();
        }
        assert!(st.is_complete());
        assert_eq!(st.eligible_count(), 0);
    }

    #[test]
    fn executed_node_loses_eligibility() {
        let g = from_arcs(2, &[]).unwrap();
        let mut st = ExecState::new(&g);
        assert!(st.is_eligible(NodeId(0)));
        st.execute(NodeId(0)).unwrap();
        assert!(!st.is_eligible(NodeId(0)));
        assert!(st.is_executed(NodeId(0)));
        assert_eq!(st.eligible_count(), 1);
    }
}
