//! Benches for dag-family construction, composition, and coarsening —
//! one group per paper family.

use ic_bench::harness::Runner;
use ic_families::butterfly::{butterfly, butterfly_as_block_chain, coarsen_butterfly};
use ic_families::diamond::{diamond_chain, diamond_from_out_tree};
use ic_families::dlt::{dlt_prefix, dlt_vee3};
use ic_families::matmul::recursive_matmul;
use ic_families::mesh::{coarsen_mesh, out_mesh, out_mesh_as_w_chain};
use ic_families::prefix::{parallel_prefix, prefix_as_n_chain};
use ic_families::sorting::bitonic_network;
use ic_families::trees::{complete_out_tree, random_branching_out_tree};

fn bench_trees_and_diamonds(r: &mut Runner) {
    for depth in [4usize, 6, 8] {
        r.bench("diamonds", &format!("complete_{depth}"), || {
            let t = complete_out_tree(2, depth);
            diamond_from_out_tree(&t).unwrap()
        });
    }
    r.bench("diamonds", "random_tree_200", || {
        random_branching_out_tree(200, 2, 7)
    });
    let t = complete_out_tree(2, 3);
    r.bench("diamonds", "chain_of_4", || {
        diamond_chain(&[&t, &t, &t, &t]).unwrap()
    });
}

fn bench_meshes(r: &mut Runner) {
    for levels in [20usize, 40, 80] {
        r.bench("meshes", &format!("direct_{levels}"), || out_mesh(levels));
    }
    r.bench("meshes", "w_chain_20", || out_mesh_as_w_chain(20));
    r.bench("meshes", "coarsen_40_by_4", || coarsen_mesh(40, 4));
}

fn bench_butterflies(r: &mut Runner) {
    for d in [4usize, 7, 10] {
        r.bench("butterflies", &format!("direct_{d}"), || butterfly(d));
    }
    r.bench("butterflies", "block_chain_d4", || {
        butterfly_as_block_chain(4)
    });
    r.bench("butterflies", "coarsen_d8_b2", || coarsen_butterfly(8, 2));
}

fn bench_prefix_family(r: &mut Runner) {
    for n in [64usize, 256, 1024] {
        r.bench("prefix_dags", &format!("direct_{n}"), || parallel_prefix(n));
    }
    r.bench("prefix_dags", "n_chain_64", || prefix_as_n_chain(64));
    r.bench("prefix_dags", "dlt_prefix_64", || dlt_prefix(64));
    r.bench("prefix_dags", "dlt_vee3_64", || dlt_vee3(64));
}

fn bench_networks(r: &mut Runner) {
    for n in [16usize, 64, 256] {
        r.bench("networks", &format!("bitonic_{n}"), || bitonic_network(n));
    }
    for depth in [1usize, 2] {
        r.bench("networks", &format!("recursive_matmul_{depth}"), || {
            recursive_matmul(depth)
        });
    }
}

fn main() {
    let mut r = Runner::from_env();
    bench_trees_and_diamonds(&mut r);
    bench_meshes(&mut r);
    bench_butterflies(&mut r);
    bench_prefix_family(&mut r);
    bench_networks(&mut r);
    r.finish();
}
