//! Criterion benches for dag-family construction, composition, and
//! coarsening — one group per paper family.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ic_families::butterfly::{butterfly, butterfly_as_block_chain, coarsen_butterfly};
use ic_families::diamond::{diamond_chain, diamond_from_out_tree};
use ic_families::dlt::{dlt_prefix, dlt_vee3};
use ic_families::matmul::recursive_matmul;
use ic_families::mesh::{coarsen_mesh, out_mesh, out_mesh_as_w_chain};
use ic_families::prefix::{parallel_prefix, prefix_as_n_chain};
use ic_families::sorting::bitonic_network;
use ic_families::trees::{complete_out_tree, random_branching_out_tree};

fn bench_trees_and_diamonds(c: &mut Criterion) {
    let mut g = c.benchmark_group("diamonds");
    for depth in [4usize, 6, 8] {
        g.bench_with_input(BenchmarkId::new("complete", depth), &depth, |b, &d| {
            b.iter(|| {
                let t = complete_out_tree(2, d);
                diamond_from_out_tree(black_box(&t)).unwrap()
            })
        });
    }
    g.bench_function("random_tree_200", |b| {
        b.iter(|| random_branching_out_tree(200, 2, black_box(7)))
    });
    let t = complete_out_tree(2, 3);
    g.bench_function("chain_of_4", |b| {
        b.iter(|| diamond_chain(black_box(&[&t, &t, &t, &t])).unwrap())
    });
    g.finish();
}

fn bench_meshes(c: &mut Criterion) {
    let mut g = c.benchmark_group("meshes");
    for levels in [20usize, 40, 80] {
        g.bench_with_input(BenchmarkId::new("direct", levels), &levels, |b, &l| {
            b.iter(|| out_mesh(black_box(l)))
        });
    }
    g.bench_function("w_chain_20", |b| {
        b.iter(|| out_mesh_as_w_chain(black_box(20)))
    });
    g.bench_function("coarsen_40_by_4", |b| {
        b.iter(|| coarsen_mesh(black_box(40), 4))
    });
    g.finish();
}

fn bench_butterflies(c: &mut Criterion) {
    let mut g = c.benchmark_group("butterflies");
    for d in [4usize, 7, 10] {
        g.bench_with_input(BenchmarkId::new("direct", d), &d, |b, &d| {
            b.iter(|| butterfly(black_box(d)))
        });
    }
    g.bench_function("block_chain_d4", |b| {
        b.iter(|| butterfly_as_block_chain(black_box(4)))
    });
    g.bench_function("coarsen_d8_b2", |b| {
        b.iter(|| coarsen_butterfly(black_box(8), 2))
    });
    g.finish();
}

fn bench_prefix_family(c: &mut Criterion) {
    let mut g = c.benchmark_group("prefix_dags");
    for n in [64usize, 256, 1024] {
        g.bench_with_input(BenchmarkId::new("direct", n), &n, |b, &n| {
            b.iter(|| parallel_prefix(black_box(n)))
        });
    }
    g.bench_function("n_chain_64", |b| {
        b.iter(|| prefix_as_n_chain(black_box(64)))
    });
    g.bench_function("dlt_prefix_64", |b| b.iter(|| dlt_prefix(black_box(64))));
    g.bench_function("dlt_vee3_64", |b| b.iter(|| dlt_vee3(black_box(64))));
    g.finish();
}

fn bench_networks(c: &mut Criterion) {
    let mut g = c.benchmark_group("networks");
    for n in [16usize, 64, 256] {
        g.bench_with_input(BenchmarkId::new("bitonic", n), &n, |b, &n| {
            b.iter(|| bitonic_network(black_box(n)))
        });
    }
    for depth in [1usize, 2] {
        g.bench_with_input(
            BenchmarkId::new("recursive_matmul", depth),
            &depth,
            |b, &d| b.iter(|| recursive_matmul(black_box(d))),
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_trees_and_diamonds,
    bench_meshes,
    bench_butterflies,
    bench_prefix_family,
    bench_networks
);
criterion_main!(benches);
