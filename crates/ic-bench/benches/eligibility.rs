//! Benches for the eligibility engine.
//!
//! * `envelope` — full optimal-envelope sweeps through the incremental
//!   and layer-parallel enumerator, on the paper's families near the
//!   64-node lattice cap and on `testgen` random dags;
//! * `envelope-naive` — the *same* sweeps through the retained naive
//!   reference walk (`IdealEnumerator::for_each_reference`, which
//!   recomputes every eligible set from scratch), in the same binary,
//!   so `BENCH.json` carries a like-for-like speedup baseline;
//! * `exec-state` — full-run allocation through the dense eligible
//!   pool: pop + execute every node of large out-meshes, so the
//!   per-allocation cost (and its independence from dag size) is
//!   visible in the per-node numbers.

use ic_bench::harness::Runner;
use ic_dag::ideals::IdealEnumerator;
use ic_dag::testgen::random_dags;
use ic_dag::Dag;
use ic_families::butterfly::butterfly;
use ic_families::diamond::diamond_from_out_tree;
use ic_families::mesh::out_mesh;
use ic_families::trees::complete_out_tree;
use ic_sched::heuristics::{schedule_with, Policy};
use ic_sched::optimal::optimal_envelope;

/// The optimal envelope via the naive reference walk: every state's
/// eligible set recomputed from scratch, single-threaded.
fn naive_envelope(dag: &Dag) -> Vec<usize> {
    let en = IdealEnumerator::new(dag).expect("dags here fit the 64-node cap");
    let mut env = vec![0usize; dag.num_nodes() + 1];
    en.for_each_reference(|_, size, eligible| {
        let c = eligible.count_ones() as usize;
        let slot = &mut env[size as usize];
        if c > *slot {
            *slot = c;
        }
    });
    env
}

fn bench_envelope(r: &mut Runner) {
    let mut subjects: Vec<(String, Dag)> = Vec::new();
    let mesh = out_mesh(10); // 55 nodes
    subjects.push((format!("mesh_{}", mesh.num_nodes()), mesh));
    let bfly = butterfly(3); // 32 nodes
    subjects.push((format!("butterfly_{}", bfly.num_nodes()), bfly));
    let dia = diamond_from_out_tree(&complete_out_tree(2, 3))
        .expect("the complete binary tree generates a diamond")
        .dag;
    subjects.push((format!("diamond_{}", dia.num_nodes()), dia));
    // Random subjects big enough that the sweep, not fixed overhead,
    // is what gets measured.
    for (i, g) in random_dags(0x1C5EED, 12, 26, 30)
        .into_iter()
        .filter(|g| g.num_nodes() >= 16)
        .take(3)
        .enumerate()
    {
        subjects.push((format!("random{}_{}", i, g.num_nodes()), g));
    }

    for (id, g) in &subjects {
        let n = g.num_nodes();
        r.bench_n("envelope", id, n, || optimal_envelope(g).unwrap());
        r.bench_n("envelope-naive", id, n, || naive_envelope(g));
    }

    // Sanity: the two walks must agree, or the speedup is meaningless.
    for (id, g) in &subjects {
        assert_eq!(
            optimal_envelope(g).unwrap(),
            naive_envelope(g),
            "envelope mismatch on {id}"
        );
    }
}

fn bench_exec_state(r: &mut Runner) {
    for levels in [20usize, 140] {
        let m = out_mesh(levels); // levels*(levels+1)/2 nodes
        let n = m.num_nodes();
        r.bench_n("exec-state", &format!("fifo_mesh_{n}"), n, || {
            schedule_with(&m, &Policy::Fifo)
        });
    }
    let big = out_mesh(140); // 9870 nodes
    let n = big.num_nodes();
    r.bench_n("exec-state", &format!("lifo_mesh_{n}"), n, || {
        schedule_with(&big, &Policy::Lifo)
    });
}

fn main() {
    let mut r = Runner::from_env();
    bench_envelope(&mut r);
    bench_exec_state(&mut r);
    r.finish();
}
