//! Benches for the lease-protocol model checker.
//!
//! * `check` — full exhaustive explorations of small fleet × family
//!   configurations through `ic_check::check`, with the explored
//!   state count attached to each record so `bench-check` can report
//!   states/second alongside the raw times.
//!
//! The checker is deterministic, so the state count is a property of
//! the configuration, not the run: it is measured once up front and
//! asserted stable across the timed runs by construction (same dag,
//! same fleet, same bounds).

use ic_bench::harness::Runner;
use ic_check::{check, CheckConfig, FleetSpec, WorkerSpec};
use ic_dag::Dag;
use ic_net::machine::SeededBugs;
use ic_sched::heuristics::Policy;

/// One benched configuration: a family instance and a fleet.
fn subjects() -> Vec<(String, Dag, FleetSpec)> {
    vec![
        (
            "mesh3_2w".to_string(),
            ic_families::mesh::out_mesh(3),
            FleetSpec::of(2),
        ),
        (
            "mesh3_2w_steal".to_string(),
            ic_families::mesh::out_mesh(3),
            FleetSpec::of(2).with_steal(),
        ),
        (
            "mesh4_3w".to_string(),
            ic_families::mesh::out_mesh(4),
            FleetSpec::of(3),
        ),
        // An adversarial fleet: severs, failures, and forced expiries
        // all in play — the configuration the negative suite stresses.
        (
            "chain4_faulty".to_string(),
            ic_families::trees::complete_out_tree(1, 3),
            FleetSpec {
                workers: vec![
                    WorkerSpec::v2().fails(1).severs(1).expiries(1),
                    WorkerSpec::v2(),
                ],
                steal: false,
                batch: 1,
                min_proto: 1,
            },
        ),
    ]
}

fn bench_check(r: &mut Runner) {
    let cfg = CheckConfig::default();
    for (id, dag, fleet) in subjects() {
        let outcome = check(&dag, &Policy::Fifo, &fleet, &cfg, SeededBugs::default());
        assert!(outcome.is_clean(), "{id}: the clean machine must pass");
        let states = outcome.stats().states as u64;
        r.bench_states("check", &id, dag.num_nodes(), states, || {
            check(&dag, &Policy::Fifo, &fleet, &cfg, SeededBugs::default())
        });
    }
}

fn main() {
    let mut r = Runner::from_env();
    bench_check(&mut r);
    r.finish();
}
