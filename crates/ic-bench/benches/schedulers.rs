//! Benches for the scheduling core: envelope computation, IC-optimal
//! schedule synthesis, the priority relation, heuristic schedulers, and
//! the Theorem 2.1/2.2 constructions.

use ic_bench::harness::Runner;
use ic_dag::dual;
use ic_families::diamond::diamond_from_out_tree;
use ic_families::mesh::{out_mesh, out_mesh_schedule};
use ic_families::prefix::{parallel_prefix, prefix_schedule};
use ic_families::primitives::{cycle_dag, ic_schedule, lambda, n_dag, vee_d, w_dag};
use ic_families::trees::complete_out_tree;
use ic_sched::duality::dual_schedule;
use ic_sched::heuristics::{schedule_with, Policy};
use ic_sched::optimal::{find_ic_optimal, optimal_envelope};
use ic_sched::priority::has_priority;
use ic_sched::Schedule;

fn bench_envelope(r: &mut Runner) {
    for levels in [3usize, 4, 5] {
        let m = out_mesh(levels);
        r.bench(
            "optimal_envelope",
            &format!("mesh_{}", m.num_nodes()),
            || optimal_envelope(&m).unwrap(),
        );
    }
    for depth in [2usize, 3] {
        let d = diamond_from_out_tree(&complete_out_tree(2, depth)).unwrap();
        r.bench(
            "optimal_envelope",
            &format!("diamond_{}", d.dag.num_nodes()),
            || optimal_envelope(&d.dag).unwrap(),
        );
    }
}

fn bench_synthesis(r: &mut Runner) {
    let m4 = out_mesh(4);
    r.bench("find_ic_optimal", "mesh_4", || {
        find_ic_optimal(&m4).unwrap()
    });
    let p4 = parallel_prefix(4);
    r.bench("find_ic_optimal", "prefix_4", || {
        find_ic_optimal(&p4).unwrap()
    });
}

fn bench_priority(r: &mut Runner) {
    for s in [8usize, 32, 128] {
        let (ws, wt) = (w_dag(s), w_dag(s + 1));
        let (ss, st) = (ic_schedule(&ws), ic_schedule(&wt));
        r.bench("priority_relation", &format!("w_dags_{s}"), || {
            has_priority(&ws, &ss, &wt, &st)
        });
        let (ns, nt) = (n_dag(s), cycle_dag(s));
        let (sn, sc) = (ic_schedule(&ns), ic_schedule(&nt));
        r.bench("priority_relation", &format!("n_vs_cycle_{s}"), || {
            has_priority(&ns, &sn, &nt, &sc)
        });
    }
}

fn bench_heuristics(r: &mut Runner) {
    let mesh = out_mesh(40); // 820 nodes
    for p in Policy::all(7) {
        r.bench("heuristic_schedulers", p.name(), || {
            schedule_with(&mesh, &p)
        });
    }
}

fn bench_duality(r: &mut Runner) {
    for levels in [10usize, 20, 40] {
        let m = out_mesh(levels);
        let s = out_mesh_schedule(&m);
        r.bench(
            "theorem_2_2_dual_schedule",
            &format!("mesh_{}", m.num_nodes()),
            || dual_schedule(&m, &s).unwrap(),
        );
    }
}

fn bench_profiles(r: &mut Runner) {
    for n in [64usize, 256, 1024] {
        let p = parallel_prefix(n);
        let s = prefix_schedule(n);
        r.bench(
            "profile_evaluation",
            &format!("prefix_{}", p.num_nodes()),
            || s.profile(&p),
        );
    }
    let m = out_mesh(40);
    let sm = Schedule::in_id_order(&m);
    r.bench("profile_evaluation", "mesh_820", || sm.profile(&m));
    let d = dual(&m);
    let sd = Schedule::in_id_order(&d);
    r.bench("profile_evaluation", "in_mesh_820", || sd.profile(&d));
}

fn bench_batched(r: &mut Runner) {
    let mesh = out_mesh(5);
    let prio: Vec<usize> = (0..mesh.num_nodes()).collect();
    r.bench("batched_scheduling", "greedy_mesh5_w3", || {
        ic_sched::batched::greedy_batches(&mesh, 3, &prio)
    });
    r.bench("batched_scheduling", "min_rounds_mesh5_w3", || {
        ic_sched::batched::min_rounds(&mesh, 3).unwrap()
    });
    r.bench("batched_scheduling", "optimal_mesh5_w3", || {
        ic_sched::batched::optimal_batches(&mesh, 3).unwrap()
    });
    let big = out_mesh(30);
    let prio_big: Vec<usize> = (0..big.num_nodes()).collect();
    r.bench("batched_scheduling", "greedy_mesh30_w8", || {
        ic_sched::batched::greedy_batches(&big, 8, &prio_big)
    });
}

fn bench_almost(r: &mut Runner) {
    // The certified non-admitter from the §3.1 analysis.
    let unary = {
        let mut arcs = vec![(0u32, 1), (1, 2), (0, 3)];
        for i in 0..5u32 {
            arcs.push((2, 4 + i));
        }
        arcs.push((3, 9));
        arcs.push((3, 10));
        ic_dag::builder::from_arcs(11, &arcs).unwrap()
    };
    r.bench("almost_optimal", "min_regret_unary_tree", || {
        ic_sched::almost::min_regret_schedule(&unary).unwrap()
    });
    let m4 = out_mesh(4);
    r.bench("almost_optimal", "min_regret_mesh4", || {
        ic_sched::almost::min_regret_schedule(&m4).unwrap()
    });
}

fn bench_linearize(r: &mut Runner) {
    let blocks_dags: Vec<ic_dag::Dag> = (0..8)
        .map(|i| {
            if i % 2 == 0 {
                vee_d(2 + i % 3)
            } else {
                lambda()
            }
        })
        .collect();
    let scheds: Vec<Schedule> = blocks_dags.iter().map(Schedule::in_id_order).collect();
    let blocks: Vec<ic_sched::linearize::Block<'_>> = blocks_dags
        .iter()
        .zip(&scheds)
        .map(|(dag, schedule)| ic_sched::linearize::Block { dag, schedule })
        .collect();
    r.bench("linearize", "sort_8_blocks", || {
        ic_sched::linearize::linearize(&blocks)
    });
    r.bench("linearize", "exhaustive_8_blocks", || {
        ic_sched::linearize::chain_exists_exhaustive(&blocks)
    });
}

fn main() {
    let mut r = Runner::from_env();
    bench_envelope(&mut r);
    bench_synthesis(&mut r);
    bench_priority(&mut r);
    bench_heuristics(&mut r);
    bench_duality(&mut r);
    bench_profiles(&mut r);
    bench_batched(&mut r);
    bench_almost(&mut r);
    bench_linearize(&mut r);
    r.finish();
}
