//! Criterion benches for the scheduling core: envelope computation,
//! IC-optimal schedule synthesis, the priority relation, heuristic
//! schedulers, and the Theorem 2.1/2.2 constructions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ic_dag::dual;
use ic_families::diamond::diamond_from_out_tree;
use ic_families::mesh::{out_mesh, out_mesh_schedule};
use ic_families::prefix::{parallel_prefix, prefix_schedule};
use ic_families::primitives::{cycle_dag, ic_schedule, n_dag, w_dag};
use ic_families::trees::complete_out_tree;
use ic_sched::duality::dual_schedule;
use ic_sched::heuristics::{schedule_with, Policy};
use ic_sched::optimal::{find_ic_optimal, optimal_envelope};
use ic_sched::priority::has_priority;
use ic_sched::Schedule;

fn bench_envelope(c: &mut Criterion) {
    let mut g = c.benchmark_group("optimal_envelope");
    for levels in [3usize, 4, 5] {
        let m = out_mesh(levels);
        g.bench_with_input(BenchmarkId::new("mesh", m.num_nodes()), &m, |b, m| {
            b.iter(|| optimal_envelope(black_box(m)).unwrap())
        });
    }
    for depth in [2usize, 3] {
        let d = diamond_from_out_tree(&complete_out_tree(2, depth)).unwrap();
        g.bench_with_input(
            BenchmarkId::new("diamond", d.dag.num_nodes()),
            &d.dag,
            |b, dag| b.iter(|| optimal_envelope(black_box(dag)).unwrap()),
        );
    }
    g.finish();
}

fn bench_synthesis(c: &mut Criterion) {
    let mut g = c.benchmark_group("find_ic_optimal");
    let m4 = out_mesh(4);
    g.bench_function("mesh_4", |b| {
        b.iter(|| find_ic_optimal(black_box(&m4)).unwrap())
    });
    let p4 = parallel_prefix(4);
    g.bench_function("prefix_4", |b| {
        b.iter(|| find_ic_optimal(black_box(&p4)).unwrap())
    });
    g.finish();
}

fn bench_priority(c: &mut Criterion) {
    let mut g = c.benchmark_group("priority_relation");
    for s in [8usize, 32, 128] {
        let (ws, wt) = (w_dag(s), w_dag(s + 1));
        let (ss, st) = (ic_schedule(&ws), ic_schedule(&wt));
        g.bench_with_input(BenchmarkId::new("w_dags", s), &s, |b, _| {
            b.iter(|| has_priority(black_box(&ws), &ss, black_box(&wt), &st))
        });
        let (ns, nt) = (n_dag(s), cycle_dag(s));
        let (sn, sc) = (ic_schedule(&ns), ic_schedule(&nt));
        g.bench_with_input(BenchmarkId::new("n_vs_cycle", s), &s, |b, _| {
            b.iter(|| has_priority(black_box(&ns), &sn, black_box(&nt), &sc))
        });
    }
    g.finish();
}

fn bench_heuristics(c: &mut Criterion) {
    let mut g = c.benchmark_group("heuristic_schedulers");
    let mesh = out_mesh(40); // 820 nodes
    for p in Policy::all(7) {
        g.bench_with_input(BenchmarkId::new(p.name(), mesh.num_nodes()), &p, |b, &p| {
            b.iter(|| schedule_with(black_box(&mesh), p))
        });
    }
    g.finish();
}

fn bench_duality(c: &mut Criterion) {
    let mut g = c.benchmark_group("theorem_2_2_dual_schedule");
    for levels in [10usize, 20, 40] {
        let m = out_mesh(levels);
        let s = out_mesh_schedule(&m);
        g.bench_with_input(BenchmarkId::new("mesh", m.num_nodes()), &m, |b, m| {
            b.iter(|| dual_schedule(black_box(m), &s).unwrap())
        });
    }
    g.finish();
}

fn bench_profiles(c: &mut Criterion) {
    let mut g = c.benchmark_group("profile_evaluation");
    for n in [64usize, 256, 1024] {
        let p = parallel_prefix(n);
        let s = prefix_schedule(n);
        g.bench_with_input(BenchmarkId::new("prefix", p.num_nodes()), &p, |b, dag| {
            b.iter(|| black_box(&s).profile(black_box(dag)))
        });
    }
    let m = out_mesh(40);
    let sm = Schedule::in_id_order(&m);
    g.bench_function("mesh_820", |b| b.iter(|| sm.profile(black_box(&m))));
    let d = dual(&m);
    let sd = Schedule::in_id_order(&d);
    g.bench_function("in_mesh_820", |b| b.iter(|| sd.profile(black_box(&d))));
    g.finish();
}

fn bench_batched(c: &mut Criterion) {
    let mut g = c.benchmark_group("batched_scheduling");
    let mesh = out_mesh(5);
    let prio: Vec<usize> = (0..mesh.num_nodes()).collect();
    g.bench_function("greedy_mesh5_w3", |b| {
        b.iter(|| ic_sched::batched::greedy_batches(black_box(&mesh), 3, &prio))
    });
    g.bench_function("min_rounds_mesh5_w3", |b| {
        b.iter(|| ic_sched::batched::min_rounds(black_box(&mesh), 3).unwrap())
    });
    g.bench_function("optimal_mesh5_w3", |b| {
        b.iter(|| ic_sched::batched::optimal_batches(black_box(&mesh), 3).unwrap())
    });
    let big = out_mesh(30);
    let prio_big: Vec<usize> = (0..big.num_nodes()).collect();
    g.bench_function("greedy_mesh30_w8", |b| {
        b.iter(|| ic_sched::batched::greedy_batches(black_box(&big), 8, &prio_big))
    });
    g.finish();
}

fn bench_almost(c: &mut Criterion) {
    let mut g = c.benchmark_group("almost_optimal");
    // The certified non-admitter from the §3.1 analysis.
    let unary = {
        let mut arcs = vec![(0u32, 1), (1, 2), (0, 3)];
        for i in 0..5u32 {
            arcs.push((2, 4 + i));
        }
        arcs.push((3, 9));
        arcs.push((3, 10));
        ic_dag::builder::from_arcs(11, &arcs).unwrap()
    };
    g.bench_function("min_regret_unary_tree", |b| {
        b.iter(|| ic_sched::almost::min_regret_schedule(black_box(&unary)).unwrap())
    });
    let m4 = out_mesh(4);
    g.bench_function("min_regret_mesh4", |b| {
        b.iter(|| ic_sched::almost::min_regret_schedule(black_box(&m4)).unwrap())
    });
    g.finish();
}

fn bench_linearize(c: &mut Criterion) {
    use ic_families::primitives::{lambda, vee_d};
    let mut g = c.benchmark_group("linearize");
    let blocks_dags: Vec<ic_dag::Dag> = (0..8)
        .map(|i| {
            if i % 2 == 0 {
                vee_d(2 + i % 3)
            } else {
                lambda()
            }
        })
        .collect();
    let scheds: Vec<Schedule> = blocks_dags.iter().map(Schedule::in_id_order).collect();
    let blocks: Vec<ic_sched::linearize::Block<'_>> = blocks_dags
        .iter()
        .zip(&scheds)
        .map(|(dag, schedule)| ic_sched::linearize::Block { dag, schedule })
        .collect();
    g.bench_function("sort_8_blocks", |b| {
        b.iter(|| ic_sched::linearize::linearize(black_box(&blocks)))
    });
    g.bench_function("exhaustive_8_blocks", |b| {
        b.iter(|| ic_sched::linearize::chain_exists_exhaustive(black_box(&blocks)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_envelope,
    bench_synthesis,
    bench_priority,
    bench_heuristics,
    bench_duality,
    bench_profiles,
    bench_batched,
    bench_almost,
    bench_linearize
);
criterion_main!(benches);
