//! Benches for the IC server simulator: per-policy simulation cost
//! across workload families and client populations.

use ic_bench::harness::Runner;
use ic_families::butterfly::{butterfly, butterfly_schedule};
use ic_families::mesh::{out_mesh, out_mesh_schedule};
use ic_families::prefix::{parallel_prefix, prefix_schedule};
use ic_sched::heuristics::{schedule_with, Policy};
use ic_sim::{simulate, ClientProfile, SimConfig};

fn cfg(clients: usize) -> SimConfig {
    SimConfig {
        clients: ClientProfile {
            num_clients: clients,
            mean_service: 1.0,
            jitter: 0.5,
            straggler_prob: 0.05,
            straggler_factor: 6.0,
            failure_prob: 0.0,
            comm_cost_per_arc: 0.0,
            speed_factors: None,
        },
        seed: 42,
        task_weights: None,
    }
}

fn bench_policies(r: &mut Runner) {
    let m = out_mesh(20); // 210 tasks
    let ic = out_mesh_schedule(&m);
    r.bench("simulate_by_policy", "mesh20_ic_optimal", || {
        simulate(&m, &ic, &cfg(8))
    });
    for p in [Policy::Fifo, Policy::Lifo, Policy::GreedyEligibility] {
        let s = schedule_with(&m, &p);
        r.bench(
            "simulate_by_policy",
            &format!("mesh20_{}", p.name()),
            || simulate(&m, &s, &cfg(8)),
        );
    }
}

fn bench_workload_scale(r: &mut Runner) {
    for d in [4usize, 6, 8] {
        let bf = butterfly(d);
        let s = butterfly_schedule(d);
        r.bench(
            "simulate_scale",
            &format!("butterfly_{}", bf.num_nodes()),
            || simulate(&bf, &s, &cfg(8)),
        );
    }
    for n in [64usize, 256] {
        let p = parallel_prefix(n);
        let s = prefix_schedule(n);
        r.bench(
            "simulate_scale",
            &format!("prefix_{}", p.num_nodes()),
            || simulate(&p, &s, &cfg(8)),
        );
    }
}

fn bench_client_counts(r: &mut Runner) {
    let m = out_mesh(20);
    let s = out_mesh_schedule(&m);
    for clients in [2usize, 8, 32] {
        r.bench("simulate_clients", &format!("mesh20_{clients}"), || {
            simulate(&m, &s, &cfg(clients))
        });
    }
}

fn main() {
    let mut r = Runner::from_env();
    bench_policies(&mut r);
    bench_workload_scale(&mut r);
    bench_client_counts(&mut r);
    r.finish();
}
