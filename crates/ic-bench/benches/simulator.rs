//! Criterion benches for the IC server simulator: per-policy simulation
//! cost across workload families and client populations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ic_families::butterfly::{butterfly, butterfly_schedule};
use ic_families::mesh::{out_mesh, out_mesh_schedule};
use ic_families::prefix::{parallel_prefix, prefix_schedule};
use ic_sched::heuristics::{schedule_with, Policy};
use ic_sim::{simulate, ClientProfile, SimConfig};

fn cfg(clients: usize) -> SimConfig {
    SimConfig {
        clients: ClientProfile {
            num_clients: clients,
            mean_service: 1.0,
            jitter: 0.5,
            straggler_prob: 0.05,
            straggler_factor: 6.0,
            failure_prob: 0.0,
            comm_cost_per_arc: 0.0,
            speed_factors: None,
        },
        seed: 42,
        task_weights: None,
    }
}

fn bench_policies(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulate_by_policy");
    let m = out_mesh(20); // 210 tasks
    let ic = out_mesh_schedule(&m);
    g.bench_function("mesh20_ic_optimal", |b| {
        b.iter(|| simulate(black_box(&m), &ic, &cfg(8)))
    });
    for p in [Policy::Fifo, Policy::Lifo, Policy::GreedyEligibility] {
        let s = schedule_with(&m, p);
        g.bench_with_input(BenchmarkId::new("mesh20", p.name()), &s, |b, s| {
            b.iter(|| simulate(black_box(&m), s, &cfg(8)))
        });
    }
    g.finish();
}

fn bench_workload_scale(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulate_scale");
    for d in [4usize, 6, 8] {
        let bf = butterfly(d);
        let s = butterfly_schedule(d);
        g.bench_with_input(
            BenchmarkId::new("butterfly", bf.num_nodes()),
            &bf,
            |b, dag| b.iter(|| simulate(black_box(dag), &s, &cfg(8))),
        );
    }
    for n in [64usize, 256] {
        let p = parallel_prefix(n);
        let s = prefix_schedule(n);
        g.bench_with_input(BenchmarkId::new("prefix", p.num_nodes()), &p, |b, dag| {
            b.iter(|| simulate(black_box(dag), &s, &cfg(8)))
        });
    }
    g.finish();
}

fn bench_client_counts(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulate_clients");
    let m = out_mesh(20);
    let s = out_mesh_schedule(&m);
    for clients in [2usize, 8, 32] {
        g.bench_with_input(BenchmarkId::new("mesh20", clients), &clients, |b, &k| {
            b.iter(|| simulate(black_box(&m), &s, &cfg(k)))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_policies,
    bench_workload_scale,
    bench_client_counts
);
criterion_main!(benches);
