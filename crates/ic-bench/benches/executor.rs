//! Criterion benches for the multithreaded executor: worker scaling on
//! scan and wavefront workloads, and the coarse-vs-fine granularity
//! trade the paper motivates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ic_apps::scan::scan_parallel;
use ic_apps::wavefront::wavefront_parallel;
use ic_dag::quotient;
use ic_families::mesh::out_mesh;
use ic_sched::Schedule;

fn spin(work: u32) -> u64 {
    // A small, unoptimizable compute kernel standing in for a task body.
    let mut acc = 0u64;
    for i in 0..work {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i as u64);
    }
    acc
}

fn bench_scan_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("executor_scan");
    g.sample_size(20);
    let xs: Vec<u64> = (0..256).collect();
    for workers in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::new("workers", workers), &workers, |b, &w| {
            b.iter(|| {
                scan_parallel(
                    black_box(&xs),
                    |a, b| {
                        std::hint::black_box(spin(200));
                        a.wrapping_add(*b)
                    },
                    w,
                )
            })
        });
    }
    g.finish();
}

fn bench_wavefront_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("executor_wavefront");
    g.sample_size(20);
    for workers in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::new("workers", workers), &workers, |b, &w| {
            b.iter(|| {
                wavefront_parallel(
                    black_box(24),
                    1u64,
                    |_, _, up, left| {
                        std::hint::black_box(spin(200));
                        up.copied()
                            .unwrap_or(0)
                            .wrapping_add(left.copied().unwrap_or(0))
                    },
                    w,
                )
            })
        });
    }
    g.finish();
}

/// Coarse vs fine granularity: executing the fine mesh task-by-task vs
/// its block quotient with the same total work — coarse tasks amortize
/// the executor's per-task overhead (the paper's multi-granularity
/// motivation, minus the network).
fn bench_granularity(c: &mut Criterion) {
    let mut g = c.benchmark_group("executor_granularity");
    g.sample_size(20);
    let levels = 24usize;
    let fine = out_mesh(levels);
    let fine_sched = Schedule::in_id_order(&fine);
    let per_cell = 60u32;

    g.bench_function("fine_tasks", |b| {
        b.iter(|| {
            ic_exec::execute(black_box(&fine), &fine_sched, 4, |_| {
                std::hint::black_box(spin(per_cell));
            })
        })
    });

    for bsize in [2usize, 4] {
        let coords = ic_families::mesh::mesh_coords(levels);
        let mut ids = std::collections::HashMap::new();
        let mut blocks: Vec<(usize, usize)> = coords
            .iter()
            .map(|&(r, c)| (r / bsize, c / bsize))
            .collect();
        let mut ordered = blocks.clone();
        ordered.sort_by_key(|&(r, c)| (r + c, r));
        ordered.dedup();
        for (i, blk) in ordered.iter().enumerate() {
            ids.insert(*blk, i as u32);
        }
        let assignment: Vec<u32> = blocks.drain(..).map(|blk| ids[&blk]).collect();
        let q = quotient(&fine, &assignment).unwrap();
        let sizes: Vec<u32> = q.members.iter().map(|m| m.len() as u32).collect();
        let sched = Schedule::in_id_order(&q.dag);
        g.bench_with_input(BenchmarkId::new("coarse_b", bsize), &bsize, |b, _| {
            b.iter(|| {
                ic_exec::execute(black_box(&q.dag), &sched, 4, |v| {
                    // A coarse task does its whole block's work.
                    std::hint::black_box(spin(per_cell * sizes[v.index()]));
                })
            })
        });
    }
    g.finish();
}

/// Central locked queue vs crossbeam work-stealing on a wide butterfly
/// workload: stealing trades strict priority order for lower hand-off
/// overhead.
fn bench_engines(c: &mut Criterion) {
    let mut g = c.benchmark_group("executor_engines");
    g.sample_size(20);
    let dag = ic_families::butterfly::butterfly(6); // 448 tasks
    let sched = ic_families::butterfly::butterfly_schedule(6);
    for workers in [2usize, 4] {
        g.bench_with_input(BenchmarkId::new("locked", workers), &workers, |b, &w| {
            b.iter(|| {
                ic_exec::execute(black_box(&dag), &sched, w, |_| {
                    std::hint::black_box(spin(80));
                })
            })
        });
        g.bench_with_input(BenchmarkId::new("stealing", workers), &workers, |b, &w| {
            b.iter(|| {
                ic_exec::stealing::execute_stealing(black_box(&dag), &sched, w, |_| {
                    std::hint::black_box(spin(80));
                })
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_scan_scaling,
    bench_wavefront_scaling,
    bench_granularity,
    bench_engines
);
criterion_main!(benches);
