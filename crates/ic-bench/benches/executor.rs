//! Benches for the multithreaded executor: worker scaling on scan and
//! wavefront workloads, and the coarse-vs-fine granularity trade the
//! paper motivates.

use ic_apps::scan::scan_parallel;
use ic_apps::wavefront::wavefront_parallel;
use ic_bench::harness::Runner;
use ic_dag::quotient;
use ic_families::mesh::out_mesh;
use ic_sched::Schedule;

fn spin(work: u32) -> u64 {
    // A small, unoptimizable compute kernel standing in for a task body.
    let mut acc = 0u64;
    for i in 0..work {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i as u64);
    }
    acc
}

fn bench_scan_scaling(r: &mut Runner) {
    let xs: Vec<u64> = (0..256).collect();
    for workers in [1usize, 2, 4] {
        r.bench("executor_scan", &format!("workers_{workers}"), || {
            scan_parallel(
                &xs,
                |a, b| {
                    std::hint::black_box(spin(200));
                    a.wrapping_add(*b)
                },
                workers,
            )
        });
    }
}

fn bench_wavefront_scaling(r: &mut Runner) {
    for workers in [1usize, 2, 4] {
        r.bench("executor_wavefront", &format!("workers_{workers}"), || {
            wavefront_parallel(
                24,
                1u64,
                |_, _, up, left| {
                    std::hint::black_box(spin(200));
                    up.copied()
                        .unwrap_or(0)
                        .wrapping_add(left.copied().unwrap_or(0))
                },
                workers,
            )
        });
    }
}

/// Coarse vs fine granularity: executing the fine mesh task-by-task vs
/// its block quotient with the same total work — coarse tasks amortize
/// the executor's per-task overhead (the paper's multi-granularity
/// motivation, minus the network).
fn bench_granularity(r: &mut Runner) {
    let levels = 24usize;
    let fine = out_mesh(levels);
    let fine_sched = Schedule::in_id_order(&fine);
    let per_cell = 60u32;

    r.bench("executor_granularity", "fine_tasks", || {
        ic_exec::execute(&fine, &fine_sched, 4, |_| {
            std::hint::black_box(spin(per_cell));
        })
    });

    for bsize in [2usize, 4] {
        let coords = ic_families::mesh::mesh_coords(levels);
        let mut ids = std::collections::HashMap::new();
        let mut blocks: Vec<(usize, usize)> = coords
            .iter()
            .map(|&(row, col)| (row / bsize, col / bsize))
            .collect();
        let mut ordered = blocks.clone();
        ordered.sort_by_key(|&(row, col)| (row + col, row));
        ordered.dedup();
        for (i, blk) in ordered.iter().enumerate() {
            ids.insert(*blk, i as u32);
        }
        let assignment: Vec<u32> = blocks.drain(..).map(|blk| ids[&blk]).collect();
        let q = quotient(&fine, &assignment).unwrap();
        let sizes: Vec<u32> = q.members.iter().map(|m| m.len() as u32).collect();
        let sched = Schedule::in_id_order(&q.dag);
        r.bench("executor_granularity", &format!("coarse_b{bsize}"), || {
            ic_exec::execute(&q.dag, &sched, 4, |v| {
                // A coarse task does its whole block's work.
                std::hint::black_box(spin(per_cell * sizes[v.index()]));
            })
        });
    }
}

/// Central locked queue vs work-stealing on a wide butterfly workload:
/// stealing trades strict priority order for lower hand-off overhead.
fn bench_engines(r: &mut Runner) {
    let dag = ic_families::butterfly::butterfly(6); // 448 tasks
    let sched = ic_families::butterfly::butterfly_schedule(6);
    for workers in [2usize, 4] {
        r.bench("executor_engines", &format!("locked_{workers}"), || {
            ic_exec::execute(&dag, &sched, workers, |_| {
                std::hint::black_box(spin(80));
            })
        });
        r.bench("executor_engines", &format!("stealing_{workers}"), || {
            ic_exec::stealing::execute_stealing(&dag, &sched, workers, |_| {
                std::hint::black_box(spin(80));
            })
        });
    }
}

fn main() {
    let mut r = Runner::from_env();
    bench_scan_scaling(&mut r);
    bench_wavefront_scaling(&mut r);
    bench_granularity(&mut r);
    bench_engines(&mut r);
    r.finish();
}
