//! `net` group: the reactor scale harness.
//!
//! One [`Reactor`] over the in-process loopback poller serves a fleet
//! of 1 000–10 000 worker connections, multiplexed onto a handful of
//! client driver threads (the client side is event-driven too — one
//! thread per worker would cap the harness far below 10k). The fleet
//! carries the same fault mix as the e2e scale smoke: mostly healthy
//! workers, a slice of *flaky* ones that voluntarily fail ~10% of
//! their tasks (`done ok:false` → reallocation), and a slice of
//! *severing* ones that disconnect mid-lease after one completion
//! (→ disconnect-triggered reallocation).
//!
//! Per fleet size `W` (from `IC_NET_FLEETS`, comma-separated, default
//! `1000,10000`), three raw records go into the `net` group:
//!
//! * `alloc_rate_{W}w` — whole-run wall time with
//!   `states = allocations`, so `bench-check` reports allocations/sec;
//! * `assign_p99_{W}w` — `best_ns` is the p99 request→assign latency,
//!   `mean_ns` the mean, `iters` the sample count;
//! * `drain_{W}w` — time from the last accepted completion to
//!   `run_until_drain` returning (the drain barrier's cost).
//!
//! These are macro-benchmarks: each configuration runs once and is
//! reported through [`Runner::record_raw`], not iterated.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use ic_bench::harness::Runner;
use ic_net::{
    loopback, Driver, LoopbackConn, LoopbackHandle, Message, MonotonicClock, Reactor, PROTO_V1,
};
use ic_sim::MemorySink;

/// Behavioral slice of the fleet a worker belongs to.
#[derive(Clone, Copy, PartialEq)]
enum Mix {
    Healthy,
    Flaky,
    Severing,
}

/// Same mix rule as the e2e scale smoke: 2 of every 16 workers
/// misbehave, one by failing tasks and one by severing mid-lease.
fn mix_of(i: usize) -> Mix {
    match i % 16 {
        7 => Mix::Flaky,
        11 => Mix::Severing,
        _ => Mix::Healthy,
    }
}

/// One multiplexed worker connection and its protocol state.
struct Client {
    conn: Option<LoopbackConn>,
    mix: Mix,
    rng: u64,
    acks_pending: usize,
    completions: u32,
    /// Registration acknowledged. Until then the client sends
    /// *nothing* beyond its hello: a request racing the welcome would
    /// put two requests in flight, and a request arriving while the
    /// previous one's assign is still in transit forfeits that lease.
    welcomed: bool,
    /// When the outstanding `request` went out (latency sample start).
    req_at: Option<Instant>,
    /// Earliest instant the next `request` may go out (wait backoff).
    not_before: Instant,
}

impl Client {
    /// Roll the flaky die: ~10% of reports come back `ok: false`.
    fn task_succeeds(&mut self) -> bool {
        if self.mix != Mix::Flaky {
            return true;
        }
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        !(self.rng >> 33).is_multiple_of(10)
    }
}

/// Send on a client's connection if it still has one; the loopback
/// channel is unbounded, so a send only fails once the poller itself
/// is gone — at which point the run is over anyway.
fn send(c: &Client, msg: &Message) {
    if let Some(conn) = c.conn.as_ref() {
        conn.send(msg).expect("loopback send");
    }
}

/// What one driver thread measured across its slice of the fleet.
struct DriverStats {
    /// Request→assign latencies, nanoseconds.
    assign_ns: Vec<u64>,
}

/// Drive workers `offset, offset+stride, ...` (up to `total`) against
/// the reactor until each is drained or severed.
fn drive(
    handle: &LoopbackHandle,
    offset: usize,
    stride: usize,
    total: usize,
    t0: Instant,
    last_ack_ns: &AtomicU64,
) -> DriverStats {
    let mut clients: Vec<Client> = (offset..total)
        .step_by(stride)
        .map(|i| {
            let conn = handle.connect();
            let hello = if mix_of(i) == Mix::Severing {
                // v1: no resume token, so a mid-lease disconnect
                // releases the leases immediately instead of parking
                // them for a resume that will never come.
                Message::Hello {
                    id: format!("w{i}"),
                    speed: 1.0,
                    proto: PROTO_V1,
                    resume: None,
                }
            } else {
                Message::hello(format!("w{i}"), 1.0)
            };
            conn.send(&hello).expect("hello");
            Client {
                conn: Some(conn),
                mix: mix_of(i),
                rng: 0x9E37_79B9_7F4A_7C15 ^ (i as u64 + 1),
                acks_pending: 0,
                completions: 0,
                welcomed: false,
                req_at: None,
                not_before: t0,
            }
        })
        .collect();
    let mut stats = DriverStats {
        assign_ns: Vec::new(),
    };
    let mut live = clients.len();
    while live > 0 {
        let mut progressed = false;
        for c in &mut clients {
            // Pull the message with a scoped borrow so the handlers
            // below are free to mutate (or drop) the connection.
            while c.conn.is_some() {
                let msg = match c.conn.as_mut().map(LoopbackConn::try_recv) {
                    Some(Ok(Some(msg))) => msg,
                    Some(Ok(None)) => break,
                    // The reactor closed the connection (post-drain).
                    _ => {
                        c.conn = None;
                        live -= 1;
                        break;
                    }
                };
                progressed = true;
                match msg {
                    Message::Welcome { .. } => {
                        c.welcomed = true;
                        send(c, &Message::request());
                        c.req_at = Some(Instant::now());
                    }
                    Message::Assign { tasks } => {
                        if let Some(at) = c.req_at.take() {
                            let ns = u64::try_from(at.elapsed().as_nanos()).unwrap_or(u64::MAX);
                            stats.assign_ns.push(ns);
                        }
                        if c.mix == Mix::Severing && c.completions >= 1 {
                            // Sever mid-lease: vanish without reporting,
                            // forcing a disconnect-triggered reallocation.
                            c.conn = None;
                            live -= 1;
                        } else {
                            for task in tasks {
                                let ok = c.task_succeeds();
                                send(c, &Message::Done { task, ok });
                                c.acks_pending += 1;
                            }
                        }
                    }
                    Message::Ack { accepted, .. } => {
                        if accepted {
                            c.completions += 1;
                            let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
                            last_ack_ns.fetch_max(ns, Ordering::Relaxed);
                        }
                        c.acks_pending -= 1;
                        if c.acks_pending == 0 {
                            send(c, &Message::request());
                            c.req_at = Some(Instant::now());
                        }
                    }
                    Message::Wait { ms } => {
                        c.req_at = None;
                        c.not_before = Instant::now() + Duration::from_millis(ms.clamp(1, 20));
                    }
                    // Drain — or, with no steals configured, any other
                    // frame (an error) — ends this worker.
                    _ => {
                        c.conn = None;
                        live -= 1;
                    }
                }
            }
            // Waited-out backoff elapsed: ask again.
            if c.conn.is_some()
                && c.welcomed
                && c.req_at.is_none()
                && c.acks_pending == 0
                && Instant::now() >= c.not_before
            {
                send(c, &Message::request());
                c.req_at = Some(Instant::now());
                progressed = true;
            }
        }
        if !progressed {
            std::thread::sleep(Duration::from_micros(200));
        }
    }
    stats
}

/// Run one fleet configuration and push its three records.
fn run_fleet(r: &mut Runner, workers: usize) {
    let tasks = workers * 2;
    let dag = ic_dag::builder::from_arcs(tasks, &[]).expect("independent tasks");
    let policy = ic_sched::Schedule::in_id_order(&dag);
    let cfg = ic_net::ServerConfig::builder()
        .lease_ms(30_000)
        .backoff_base_ms(1)
        .wait_ms(2)
        .expect_workers(workers)
        .batch(1)
        .shards(64)
        .poll_timeout(1)
        .seed(0x5CA1E)
        .build();
    let clock = MonotonicClock::new();
    let (poller, handle) = loopback(64);
    let driver = Driver::new(Box::new(clock), Box::new(poller));
    let mut reactor = Reactor::new(&dag, &policy, cfg, driver);
    let mut sink = MemorySink::new();

    let drivers = 8.min(workers);
    let t0 = Instant::now();
    let last_ack_ns = AtomicU64::new(0);
    let (report, mut assign_ns) = std::thread::scope(|s| {
        let joins: Vec<_> = (0..drivers)
            .map(|d| {
                let handle = handle.clone();
                let last_ack_ns = &last_ack_ns;
                s.spawn(move || drive(&handle, d, drivers, workers, t0, last_ack_ns))
            })
            .collect();
        drop(handle);
        let report = reactor.run_until_drain(&mut sink).expect("reactor run");
        let mut assign_ns: Vec<u64> = Vec::new();
        for j in joins {
            assign_ns.extend(j.join().expect("driver thread").assign_ns);
        }
        (report, assign_ns)
    });
    let total = t0.elapsed();

    if std::env::var("IC_NET_DEBUG").is_ok() {
        // Diagnostic mode: attribute every server-side `Failed` event
        // to its fleet slice and skip the records. The healthy count
        // must be 0 — a healthy worker only "fails" when the harness
        // itself misbehaves (e.g. two requests in flight forfeiting a
        // freshly granted lease).
        let trace = sink.into_trace().expect("trace");
        let mut by_mix = [0usize; 3];
        for e in &trace.events {
            if let ic_sim::TraceEvent::Failed { client, .. } = *e {
                let i = trace
                    .header
                    .workers
                    .iter()
                    .find(|w| w.client == client)
                    .and_then(|w| w.id.get(1..))
                    .and_then(|t| t.parse().ok())
                    .unwrap_or(0);
                by_mix[match mix_of(i) {
                    Mix::Healthy => 0,
                    Mix::Flaky => 1,
                    Mix::Severing => 2,
                }] += 1;
            }
        }
        eprintln!(
            "IC_NET_DEBUG {workers}w failures by mix: healthy={} flaky={} severing={}",
            by_mix[0], by_mix[1], by_mix[2]
        );
        assert_eq!(by_mix[0], 0, "healthy workers never fail");
        return;
    }
    assert_eq!(report.completions, tasks, "fleet completed the dag");
    assert_eq!(report.workers_registered, workers);
    assert!(report.allocations >= tasks);
    assert!(!assign_ns.is_empty());

    assign_ns.sort_unstable();
    let p99 = assign_ns[(assign_ns.len() * 99 / 100).min(assign_ns.len() - 1)];
    let mean = assign_ns.iter().sum::<u64>() / assign_ns.len() as u64;
    let drain_ns = u64::try_from(total.as_nanos())
        .unwrap_or(u64::MAX)
        .saturating_sub(last_ack_ns.load(Ordering::Relaxed));

    let alloc_per_s = report.allocations as f64 / total.as_secs_f64();
    println!(
        "net: {workers} workers, {tasks} tasks: {} allocations ({alloc_per_s:.0}/s), \
         {} failures recovered, total {:.2?}",
        report.allocations, report.failures, total,
    );
    r.record_raw(
        "net",
        &format!("alloc_rate_{workers}w"),
        Some(tasks),
        Some(u64::try_from(report.allocations).unwrap_or(u64::MAX)),
        total,
        total,
        1,
    );
    r.record_raw(
        "net",
        &format!("assign_p99_{workers}w"),
        Some(tasks),
        None,
        Duration::from_nanos(p99),
        Duration::from_nanos(mean),
        assign_ns.len() as u64,
    );
    r.record_raw(
        "net",
        &format!("drain_{workers}w"),
        Some(tasks),
        None,
        Duration::from_nanos(drain_ns),
        Duration::from_nanos(drain_ns),
        1,
    );
}

fn main() {
    let mut r = Runner::from_env();
    let fleets = std::env::var("IC_NET_FLEETS").unwrap_or_else(|_| "1000,10000".to_string());
    for spec in fleets.split(',') {
        let spec = spec.trim();
        if spec.is_empty() {
            continue;
        }
        let workers: usize = spec
            .parse()
            .unwrap_or_else(|_| panic!("IC_NET_FLEETS: bad fleet size {spec:?}"));
        run_fleet(&mut r, workers.max(16));
    }
    r.finish();
}
