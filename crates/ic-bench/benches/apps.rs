//! Criterion benches for the applicative computations: the §5.2
//! FFT-vs-naive-DFT crossover, convolution, dag-driven sorting vs the
//! standard library, scan, DLT, graph paths, adaptive quadrature, and
//! block matrix multiplication.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ic_apps::dlt::{dlt_via_prefix, dlt_via_vee3};
use ic_apps::fft::{dft_naive, fft_via_butterfly};
use ic_apps::graphpaths::all_path_lengths;
use ic_apps::integration::{integrate_adaptive, Rule};
use ic_apps::matmul::{multiply_recursive, Matrix};
use ic_apps::numeric::{BoolMatrix, Complex};
use ic_apps::poly::{convolve_fft, convolve_naive};
use ic_apps::scan::scan_via_dag;
use ic_apps::sorting::{bitonic_sort_array, bitonic_sort_via_dag};

fn signal(n: usize) -> Vec<Complex> {
    (0..n)
        .map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 0.3).cos()))
        .collect()
}

/// The paper's headline §5.2 claim rendered as a bench: FFT is
/// Θ(n log n) against the naive Θ(n²) DFT; the crossover appears as n
/// grows.
fn bench_fft_crossover(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft_vs_naive_dft");
    for n in [16usize, 64, 256] {
        let xs = signal(n);
        g.bench_with_input(BenchmarkId::new("butterfly_fft", n), &xs, |b, xs| {
            b.iter(|| fft_via_butterfly(black_box(xs)))
        });
        g.bench_with_input(BenchmarkId::new("naive_dft", n), &xs, |b, xs| {
            b.iter(|| dft_naive(black_box(xs)))
        });
    }
    g.finish();
}

fn bench_convolution(c: &mut Criterion) {
    let mut g = c.benchmark_group("convolution");
    for n in [32usize, 128, 512] {
        let a: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).sin()).collect();
        let b_: Vec<f64> = (0..n).map(|i| (i as f64 * 0.07).cos()).collect();
        g.bench_with_input(BenchmarkId::new("fft", n), &n, |b, _| {
            b.iter(|| convolve_fft(black_box(&a), black_box(&b_)))
        });
        g.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| convolve_naive(black_box(&a), black_box(&b_)))
        });
    }
    g.finish();
}

fn bench_sorting(c: &mut Criterion) {
    let mut g = c.benchmark_group("sorting");
    for n in [64usize, 256] {
        let xs: Vec<i64> = (0..n).map(|i| ((i * 2654435761) % 1000) as i64).collect();
        g.bench_with_input(BenchmarkId::new("bitonic_array", n), &xs, |b, xs| {
            b.iter(|| bitonic_sort_array(black_box(xs)))
        });
        g.bench_with_input(BenchmarkId::new("bitonic_dag", n), &xs, |b, xs| {
            b.iter(|| bitonic_sort_via_dag(black_box(xs)))
        });
        g.bench_with_input(BenchmarkId::new("std_sort", n), &xs, |b, xs| {
            b.iter(|| {
                let mut v = xs.clone();
                v.sort();
                v
            })
        });
    }
    g.finish();
}

fn bench_scan(c: &mut Criterion) {
    let mut g = c.benchmark_group("parallel_prefix_scan");
    for n in [64usize, 256, 1024] {
        let xs: Vec<i64> = (0..n as i64).collect();
        g.bench_with_input(BenchmarkId::new("dag_scan", n), &xs, |b, xs| {
            b.iter(|| scan_via_dag(black_box(xs), |a, b| a + b))
        });
    }
    g.finish();
}

fn bench_dlt(c: &mut Criterion) {
    let mut g = c.benchmark_group("dlt");
    let omega = Complex::cis(0.43);
    for n in [16usize, 64] {
        let xs = signal(n);
        g.bench_with_input(BenchmarkId::new("via_prefix", n), &xs, |b, xs| {
            b.iter(|| dlt_via_prefix(black_box(xs), omega, 3))
        });
        g.bench_with_input(BenchmarkId::new("via_vee3", n), &xs, |b, xs| {
            b.iter(|| dlt_via_vee3(black_box(xs), omega, 3))
        });
    }
    g.finish();
}

fn bench_graph_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("graph_paths");
    for (nodes, k) in [(9usize, 8usize), (30, 8), (30, 16)] {
        let mut entries = Vec::new();
        for i in 0..nodes {
            entries.push((i, (i + 1) % nodes));
            entries.push((i, (i + 3) % nodes));
        }
        let a = BoolMatrix::from_entries(nodes, &entries);
        g.bench_with_input(BenchmarkId::new(format!("n{nodes}"), k), &a, |b, a| {
            b.iter(|| all_path_lengths(black_box(a), k))
        });
    }
    g.finish();
}

fn bench_integration(c: &mut Criterion) {
    let mut g = c.benchmark_group("adaptive_quadrature");
    g.bench_function("sin_trapezoid", |b| {
        b.iter(|| {
            integrate_adaptive(
                f64::sin,
                0.0,
                std::f64::consts::PI,
                black_box(1e-5),
                20,
                Rule::Trapezoid,
            )
            .unwrap()
            .value
        })
    });
    g.bench_function("sin_simpson", |b| {
        b.iter(|| {
            integrate_adaptive(
                f64::sin,
                0.0,
                std::f64::consts::PI,
                black_box(1e-8),
                20,
                Rule::Simpson,
            )
            .unwrap()
            .value
        })
    });
    g.finish();
}

fn bench_matmul(c: &mut Criterion) {
    let mut g = c.benchmark_group("block_matmul");
    for n in [32usize, 64] {
        let a = Matrix::from_fn(n, |i, j| ((i + j) as f64 * 0.01).sin());
        let b_ = Matrix::from_fn(n, |i, j| ((i * j) as f64 * 0.02).cos());
        g.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| black_box(&a).multiply_naive(black_box(&b_)))
        });
        for cutoff in [8usize, 16] {
            g.bench_with_input(
                BenchmarkId::new(format!("recursive_cut{cutoff}"), n),
                &n,
                |b, _| b.iter(|| multiply_recursive(black_box(&a), black_box(&b_), cutoff)),
            );
        }
    }
    g.finish();
}

/// Radix granularity of the FFT: the same transform at radices 2 and 4
/// (coarser butterfly tasks) — the §5.1 granularity knob, timed.
fn bench_radix_fft(c: &mut Criterion) {
    use ic_apps::fft::radix_r_fft;
    let mut g = c.benchmark_group("radix_fft");
    for n in [64usize, 256] {
        let xs = signal(n);
        g.bench_with_input(BenchmarkId::new("radix2", n), &xs, |b, xs| {
            b.iter(|| radix_r_fft(2, black_box(xs)))
        });
        g.bench_with_input(BenchmarkId::new("radix4", n), &xs, |b, xs| {
            b.iter(|| radix_r_fft(4, black_box(xs)))
        });
    }
    g.finish();
}

/// Odd-even vs bitonic, dag-driven: fewer comparators vs denser stages.
fn bench_network_sorts(c: &mut Criterion) {
    use ic_apps::sorting::odd_even_sort_via_dag;
    let mut g = c.benchmark_group("network_sorts");
    for n in [64usize, 256] {
        let xs: Vec<i64> = (0..n).map(|i| ((i * 2654435761) % 997) as i64).collect();
        g.bench_with_input(BenchmarkId::new("bitonic_dag", n), &xs, |b, xs| {
            b.iter(|| bitonic_sort_via_dag(black_box(xs)))
        });
        g.bench_with_input(BenchmarkId::new("odd_even_dag", n), &xs, |b, xs| {
            b.iter(|| odd_even_sort_via_dag(black_box(xs)))
        });
    }
    g.finish();
}

/// The carry-lookahead adder through the prefix dag.
fn bench_adder(c: &mut Criterion) {
    use ic_apps::adder::add_u64;
    let mut g = c.benchmark_group("carry_lookahead");
    g.bench_function("add_u64", |b| {
        b.iter(|| {
            add_u64(
                black_box(0xDEAD_BEEF_0123_4567),
                black_box(0x0FED_CBA9_8765_4321),
            )
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_fft_crossover,
    bench_convolution,
    bench_sorting,
    bench_scan,
    bench_dlt,
    bench_graph_paths,
    bench_integration,
    bench_matmul,
    bench_radix_fft,
    bench_network_sorts,
    bench_adder
);
criterion_main!(benches);
