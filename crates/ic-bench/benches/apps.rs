//! Benches for the applicative computations: the §5.2 FFT-vs-naive-DFT
//! crossover, convolution, dag-driven sorting vs the standard library,
//! scan, DLT, graph paths, adaptive quadrature, and block matrix
//! multiplication.

use ic_apps::adder::add_u64;
use ic_apps::dlt::{dlt_via_prefix, dlt_via_vee3};
use ic_apps::fft::{dft_naive, fft_via_butterfly, radix_r_fft};
use ic_apps::graphpaths::all_path_lengths;
use ic_apps::integration::{integrate_adaptive, Rule};
use ic_apps::matmul::{multiply_recursive, Matrix};
use ic_apps::numeric::{BoolMatrix, Complex};
use ic_apps::poly::{convolve_fft, convolve_naive};
use ic_apps::scan::scan_via_dag;
use ic_apps::sorting::{bitonic_sort_array, bitonic_sort_via_dag, odd_even_sort_via_dag};
use ic_bench::harness::Runner;

fn signal(n: usize) -> Vec<Complex> {
    (0..n)
        .map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 0.3).cos()))
        .collect()
}

/// The paper's headline §5.2 claim rendered as a bench: FFT is
/// Θ(n log n) against the naive Θ(n²) DFT; the crossover appears as n
/// grows.
fn bench_fft_crossover(r: &mut Runner) {
    for n in [16usize, 64, 256] {
        let xs = signal(n);
        r.bench("fft_vs_naive_dft", &format!("butterfly_fft_{n}"), || {
            fft_via_butterfly(&xs)
        });
        r.bench("fft_vs_naive_dft", &format!("naive_dft_{n}"), || {
            dft_naive(&xs)
        });
    }
}

fn bench_convolution(r: &mut Runner) {
    for n in [32usize, 128, 512] {
        let a: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).sin()).collect();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.07).cos()).collect();
        r.bench("convolution", &format!("fft_{n}"), || convolve_fft(&a, &b));
        r.bench("convolution", &format!("naive_{n}"), || {
            convolve_naive(&a, &b)
        });
    }
}

fn bench_sorting(r: &mut Runner) {
    for n in [64usize, 256] {
        let xs: Vec<i64> = (0..n).map(|i| ((i * 2654435761) % 1000) as i64).collect();
        r.bench("sorting", &format!("bitonic_array_{n}"), || {
            bitonic_sort_array(&xs)
        });
        r.bench("sorting", &format!("bitonic_dag_{n}"), || {
            bitonic_sort_via_dag(&xs)
        });
        r.bench("sorting", &format!("std_sort_{n}"), || {
            let mut v = xs.clone();
            v.sort();
            v
        });
    }
}

fn bench_scan(r: &mut Runner) {
    for n in [64usize, 256, 1024] {
        let xs: Vec<i64> = (0..n as i64).collect();
        r.bench("parallel_prefix_scan", &format!("dag_scan_{n}"), || {
            scan_via_dag(&xs, |a, b| a + b)
        });
    }
}

fn bench_dlt(r: &mut Runner) {
    let omega = Complex::cis(0.43);
    for n in [16usize, 64] {
        let xs = signal(n);
        r.bench("dlt", &format!("via_prefix_{n}"), || {
            dlt_via_prefix(&xs, omega, 3)
        });
        r.bench("dlt", &format!("via_vee3_{n}"), || {
            dlt_via_vee3(&xs, omega, 3)
        });
    }
}

fn bench_graph_paths(r: &mut Runner) {
    for (nodes, k) in [(9usize, 8usize), (30, 8), (30, 16)] {
        let mut entries = Vec::new();
        for i in 0..nodes {
            entries.push((i, (i + 1) % nodes));
            entries.push((i, (i + 3) % nodes));
        }
        let a = BoolMatrix::from_entries(nodes, &entries);
        r.bench("graph_paths", &format!("n{nodes}_k{k}"), || {
            all_path_lengths(&a, k)
        });
    }
}

fn bench_integration(r: &mut Runner) {
    r.bench("adaptive_quadrature", "sin_trapezoid", || {
        integrate_adaptive(
            f64::sin,
            0.0,
            std::f64::consts::PI,
            1e-5,
            20,
            Rule::Trapezoid,
        )
        .unwrap()
        .value
    });
    r.bench("adaptive_quadrature", "sin_simpson", || {
        integrate_adaptive(f64::sin, 0.0, std::f64::consts::PI, 1e-8, 20, Rule::Simpson)
            .unwrap()
            .value
    });
}

fn bench_matmul(r: &mut Runner) {
    for n in [32usize, 64] {
        let a = Matrix::from_fn(n, |i, j| ((i + j) as f64 * 0.01).sin());
        let b = Matrix::from_fn(n, |i, j| ((i * j) as f64 * 0.02).cos());
        r.bench("block_matmul", &format!("naive_{n}"), || {
            a.multiply_naive(&b)
        });
        for cutoff in [8usize, 16] {
            r.bench(
                "block_matmul",
                &format!("recursive_cut{cutoff}_{n}"),
                || multiply_recursive(&a, &b, cutoff),
            );
        }
    }
}

/// Radix granularity of the FFT: the same transform at radices 2 and 4
/// (coarser butterfly tasks) — the §5.1 granularity knob, timed.
fn bench_radix_fft(r: &mut Runner) {
    for n in [64usize, 256] {
        let xs = signal(n);
        r.bench("radix_fft", &format!("radix2_{n}"), || radix_r_fft(2, &xs));
        r.bench("radix_fft", &format!("radix4_{n}"), || radix_r_fft(4, &xs));
    }
}

/// Odd-even vs bitonic, dag-driven: fewer comparators vs denser stages.
fn bench_network_sorts(r: &mut Runner) {
    for n in [64usize, 256] {
        let xs: Vec<i64> = (0..n).map(|i| ((i * 2654435761) % 997) as i64).collect();
        r.bench("network_sorts", &format!("bitonic_dag_{n}"), || {
            bitonic_sort_via_dag(&xs)
        });
        r.bench("network_sorts", &format!("odd_even_dag_{n}"), || {
            odd_even_sort_via_dag(&xs)
        });
    }
}

/// The carry-lookahead adder through the prefix dag.
fn bench_adder(r: &mut Runner) {
    r.bench("carry_lookahead", "add_u64", || {
        add_u64(0xDEAD_BEEF_0123_4567, 0x0FED_CBA9_8765_4321)
    });
}

fn main() {
    let mut r = Runner::from_env();
    bench_fft_crossover(&mut r);
    bench_convolution(&mut r);
    bench_sorting(&mut r);
    bench_scan(&mut r);
    bench_dlt(&mut r);
    bench_graph_paths(&mut r);
    bench_integration(&mut r);
    bench_matmul(&mut r);
    bench_radix_fft(&mut r);
    bench_network_sorts(&mut r);
    bench_adder(&mut r);
    r.finish();
}
