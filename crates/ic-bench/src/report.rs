//! Plain-text experiment reporting.

use std::fmt::Write as _;

/// One experiment's outcome: an identifier tied to a paper artifact, a
/// title, free-form result lines, and a verdict.
#[derive(Debug, Clone)]
pub struct Section {
    /// Artifact id: `F1`..`F17`, `T1`, `S5a`, `S5b`, `SIM`.
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// Result lines (tables, profiles, checks).
    pub lines: Vec<String>,
    /// Did every check in the section pass?
    pub pass: bool,
}

impl Section {
    /// Start a passing section; failed checks flip the verdict.
    pub fn new(id: &'static str, title: &'static str) -> Self {
        Section {
            id,
            title,
            lines: Vec::new(),
            pass: true,
        }
    }

    /// Append a free-form line.
    pub fn line(&mut self, s: impl Into<String>) {
        self.lines.push(s.into());
    }

    /// Record a named check.
    pub fn check(&mut self, name: &str, ok: bool) {
        self.lines
            .push(format!("  [{}] {}", if ok { "PASS" } else { "FAIL" }, name));
        self.pass &= ok;
    }

    /// Record a named expectation over a displayed value.
    pub fn check_eq<T: PartialEq + std::fmt::Debug>(&mut self, name: &str, got: T, want: T) {
        let ok = got == want;
        if ok {
            self.lines.push(format!("  [PASS] {name} = {got:?}"));
        } else {
            self.lines
                .push(format!("  [FAIL] {name}: got {got:?}, want {want:?}"));
        }
        self.pass &= ok;
    }

    /// Render to text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== {} — {} {}",
            self.id,
            self.title,
            if self.pass { "[PASS]" } else { "[FAIL]" }
        );
        for l in &self.lines {
            let _ = writeln!(out, "{l}");
        }
        out
    }
}

/// Format an eligibility profile compactly.
pub fn fmt_profile(p: &[usize]) -> String {
    let body: Vec<String> = p.iter().map(|e| e.to_string()).collect();
    format!("[{}]", body.join(" "))
}

/// Render a profile as a unicode sparkline (`▁▂▃▄▅▆▇█`), the harness's
/// stand-in for the paper's eligibility "curves".
pub fn sparkline(p: &[usize]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = p.iter().copied().max().unwrap_or(0);
    if max == 0 {
        return "▁".repeat(p.len());
    }
    p.iter()
        .map(|&e| BARS[(e * (BARS.len() - 1)).div_ceil(max).min(BARS.len() - 1)])
        .collect()
}

/// Left-pad/align simple columns for report tables.
pub fn table_row(cells: &[String], widths: &[usize]) -> String {
    let mut out = String::from("  ");
    for (c, w) in cells.iter().zip(widths) {
        let _ = write!(out, "{c:<width$}  ", width = w);
    }
    out.trim_end().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn section_verdicts() {
        let mut s = Section::new("F1", "test");
        s.check("ok", true);
        assert!(s.pass);
        s.check("bad", false);
        assert!(!s.pass);
        let r = s.render();
        assert!(r.contains("[FAIL]"));
        assert!(r.contains("== F1"));
    }

    #[test]
    fn check_eq_formats() {
        let mut s = Section::new("T1", "eq");
        s.check_eq("count", 3, 3);
        assert!(s.pass);
        s.check_eq("count", 2, 3);
        assert!(!s.pass);
    }

    #[test]
    fn profile_formatting() {
        assert_eq!(fmt_profile(&[1, 2, 0]), "[1 2 0]");
    }

    #[test]
    fn sparkline_shapes() {
        let s = sparkline(&[0, 2, 4, 2, 0]);
        assert_eq!(s.chars().count(), 5);
        assert!(s.starts_with('▁'));
        assert!(s.contains('█'));
        assert_eq!(sparkline(&[0, 0]), "▁▁");
        assert_eq!(sparkline(&[]), "");
    }

    #[test]
    fn row_alignment() {
        let row = table_row(&["a".into(), "bb".into()], &[3, 4]);
        assert!(row.starts_with("  a"));
    }
}
