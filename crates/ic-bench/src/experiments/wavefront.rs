//! Experiments F5, F6, F7: wavefront (mesh) computations.

use ic_dag::{Dag, NodeId};
use ic_families::mesh::{
    cluster_stats, coarsen_mesh, in_mesh, in_mesh_schedule, out_mesh, out_mesh_as_w_chain,
    out_mesh_schedule,
};
use ic_sched::compose_schedule::{linear_composition_schedule, Stage};
use ic_sched::heuristics::{schedule_with, Policy};
use ic_sched::optimal::{is_ic_optimal, optimal_envelope};
use ic_sched::priority::is_priority_chain;
use ic_sched::quality::{area_under, dominates};
use ic_sched::Schedule;

use crate::report::{fmt_profile, table_row, Section};

use super::Ctx;

/// Fig. 5: the out-mesh and in-mesh; the diagonal schedule and its dual.
pub fn fig05_meshes(ctx: &Ctx) -> Section {
    let mut s = Section::new("F5", "Fig. 5: out-mesh and in-mesh (pyramid)");
    let om = out_mesh(5);
    let im = in_mesh(5);
    let os = out_mesh_schedule(&om);
    let is_ = in_mesh_schedule(&im).unwrap();
    ctx.dot("fig05_out_mesh", &om, Some(&os));
    ctx.dot("fig05_in_mesh", &im, Some(&is_));
    s.check_eq(
        "out-mesh(5): (nodes, arcs)",
        (om.num_nodes(), om.num_arcs()),
        (15, 20),
    );
    s.check_eq(
        "in-mesh is the dual",
        (im.num_sources(), im.num_sinks()),
        (5, 1),
    );
    s.line(format!(
        "  diagonal profile = {}",
        fmt_profile(&os.profile(&om))
    ));
    s.check(
        "diagonal schedule is IC-optimal",
        is_ic_optimal(&om, &os).unwrap(),
    );
    s.check(
        "dual schedule is IC-optimal on the in-mesh",
        is_ic_optimal(&im, &is_).unwrap(),
    );
    s
}

/// Fig. 6: the out-mesh as a ▷-linear composition of W-dags; Theorem 2.1
/// reproduces the diagonal schedule's optimality.
pub fn fig06_w_decomposition(ctx: &Ctx) -> Section {
    let mut s = Section::new("F6", "Fig. 6: out-mesh = W_1 ⇑ W_2 ⇑ ... (▷-linear)");
    let levels = 5;
    let (composite, maps, stages) = out_mesh_as_w_chain(levels);
    ctx.dot("fig06_w_chain", &composite, None);
    let direct = out_mesh(levels);
    s.check_eq(
        "composition matches direct construction (nodes, arcs)",
        (composite.num_nodes(), composite.num_arcs()),
        (direct.num_nodes(), direct.num_arcs()),
    );
    let schedules: Vec<Schedule> = stages.iter().map(Schedule::in_id_order).collect();
    let pairs: Vec<(&Dag, &Schedule)> = stages.iter().zip(&schedules).collect();
    s.check(
        "W_1 ▷ W_2 ▷ ... ▷ W_4 (smaller over larger)",
        is_priority_chain(&pairs),
    );
    let st: Vec<Stage<'_>> = stages
        .iter()
        .zip(&maps)
        .zip(&schedules)
        .map(|((dag, map), schedule)| Stage { dag, map, schedule })
        .collect();
    let sched = linear_composition_schedule(&composite, &st).unwrap();
    s.check(
        "Theorem 2.1 composite schedule is IC-optimal",
        is_ic_optimal(&composite, &sched).unwrap(),
    );
    // Heuristic contrast on the mesh.
    let envelope = optimal_envelope(&direct).unwrap();
    let opt = out_mesh_schedule(&direct).profile(&direct);
    s.line(format!("  envelope      = {}", fmt_profile(&envelope)));
    for p in [Policy::Fifo, Policy::Lifo, Policy::Random(3)] {
        let hp = schedule_with(&direct, &p).profile(&direct);
        s.line(format!(
            "  {:<9} area {} vs optimal {} — dominated: {}",
            p.name(),
            area_under(&hp),
            area_under(&opt),
            dominates(&opt, &hp)
        ));
    }
    s
}

/// Fig. 7: mesh coarsening — quadratic compute, linear communication.
pub fn fig07_mesh_coarsening(ctx: &Ctx) -> Section {
    let mut s = Section::new("F7", "Fig. 7: rendering an out-mesh multi-granular");
    let levels = 12;
    let fine = out_mesh(levels);
    s.line(table_row(
        &[
            "b".into(),
            "coarse nodes".into(),
            "max granularity".into(),
            "max cross-arcs".into(),
            "g/x ratio".into(),
        ],
        &[3, 12, 15, 14, 9],
    ));
    for b in [1usize, 2, 3, 4, 6] {
        let q = coarsen_mesh(levels, b);
        if b == 2 {
            ctx.dot("fig07_coarse_b2", &q.dag, None);
        }
        let stats = cluster_stats(&fine, &q);
        let gmax = stats.iter().map(|&(g, _)| g).max().unwrap();
        let xmax = stats.iter().map(|&(_, x)| x).max().unwrap();
        s.line(table_row(
            &[
                b.to_string(),
                q.dag.num_nodes().to_string(),
                gmax.to_string(),
                xmax.to_string(),
                format!("{:.2}", gmax as f64 / xmax.max(1) as f64),
            ],
            &[3, 12, 15, 14, 9],
        ));
        // Compute grows ~b², communication ~b.
        s.check(
            &format!("b = {b}: granularity {gmax} == b² and cross {xmax} <= 4b"),
            gmax == b * b && xmax <= 4 * b,
        );
    }
    // Uniform coarsening is again an out-mesh.
    let q = coarsen_mesh(12, 4);
    let small = out_mesh(3);
    s.check_eq(
        "coarse(12, 4) is the 3-diagonal out-mesh (nodes, arcs)",
        (q.dag.num_nodes(), q.dag.num_arcs()),
        (small.num_nodes(), small.num_arcs()),
    );
    s.check(
        "coarse mesh admits an IC-optimal schedule",
        is_ic_optimal(&q.dag, &Schedule::in_id_order(&q.dag)).unwrap(),
    );
    // Non-dividing b: irregular granularity — still acyclic/schedulable.
    let q7 = coarsen_mesh(7, 3);
    s.check(
        "non-uniform coarsening (levels 7, b 3) admits an IC-optimal schedule",
        ic_sched::optimal::admits_ic_optimal(&q7.dag).unwrap(),
    );
    let stats7 = cluster_stats(&out_mesh(7), &q7);
    let gs: Vec<usize> = stats7.iter().map(|&(g, _)| g).collect();
    s.line(format!(
        "  levels 7, b 3 granularities: {gs:?} (unequal => regularity lost)"
    ));
    let _ = NodeId(0);
    s
}
