//! Ablation experiments: the design-choice studies DESIGN.md calls for,
//! beyond the paper's own artifacts.

use ic_dag::traversal::height;
use ic_families::diamond::diamond_from_out_tree;
use ic_families::mesh::{cluster_stats, coarsen_mesh, out_mesh, out_mesh_schedule};
use ic_families::prefix::parallel_prefix;
use ic_families::sorting::{
    bitonic_comparators, bitonic_network, comparator_schedule, odd_even_comparators,
    odd_even_network,
};
use ic_families::trees::complete_out_tree;
use ic_sched::almost::{greedy_regret_schedule, min_regret_schedule, regret};
use ic_sched::batched::{greedy_batches, min_rounds, optimal_batches};
use ic_sched::heuristics::{schedule_with, Policy};
use ic_sched::optimal::admits_ic_optimal;
use ic_sched::Schedule;
use ic_sim::{simulate, ClientProfile, SimConfig};

use crate::report::{table_row, Section};

use super::Ctx;

/// AB1 — the batched regimen of \[20\] vs the per-task regimen: minimum
/// rounds across batch widths, and the greedy/optimal gap.
pub fn ab1_batched_scheduling(_ctx: &Ctx) -> Section {
    let mut s = Section::new(
        "AB1",
        "Ablation: batched allocation ([20]) — rounds vs batch width",
    );
    let workloads = [
        (
            "diamond(2,2)",
            diamond_from_out_tree(&complete_out_tree(2, 2)).unwrap().dag,
        ),
        ("mesh(5)", out_mesh(5)),
        ("prefix(4)", parallel_prefix(4)),
    ];
    let widths_hdr = [12usize, 7, 7, 9, 9, 9];
    for (name, dag) in workloads {
        s.line(format!(
            "  -- {name}: {} tasks, height {} --",
            dag.num_nodes(),
            height(&dag)
        ));
        s.line(table_row(
            &[
                "width".to_string(),
                "min".to_string(),
                "opt".to_string(),
                "greedy".to_string(),
                String::new(),
                String::new(),
            ],
            &widths_hdr,
        ));
        let prio: Vec<usize> = (0..dag.num_nodes()).collect();
        for width in [1usize, 2, 4, dag.num_nodes()] {
            let min = min_rounds(&dag, width).unwrap();
            let opt = optimal_batches(&dag, width).unwrap();
            let greedy = greedy_batches(&dag, width, &prio);
            s.line(table_row(
                &[
                    width.to_string(),
                    min.to_string(),
                    opt.num_rounds().to_string(),
                    greedy.num_rounds().to_string(),
                    String::new(),
                    String::new(),
                ],
                &widths_hdr,
            ));
            s.check(
                &format!("{name} width {width}: optimal batches attain the minimum ({min})"),
                opt.num_rounds() == min,
            );
            s.check(
                &format!("{name} width {width}: greedy within 2x of minimum"),
                greedy.num_rounds() <= 2 * min,
            );
        }
        // Unbounded width reaches the height bound ("optimality is
        // always possible within the batched framework").
        s.check(
            &format!("{name}: unbounded width achieves height rounds"),
            min_rounds(&dag, 64).unwrap() == height(&dag),
        );
    }
    s
}

/// AB2 — comparator-count vs IC-schedulability: the bitonic network
/// (pure B-composition) admits IC-optimal schedules; the cheaper
/// odd-even merge network (pass-through wires) does not.
pub fn ab2_network_scope(_ctx: &Ctx) -> Section {
    let mut s = Section::new(
        "AB2",
        "Ablation: comparator count vs IC-optimality (bitonic vs odd-even)",
    );
    s.line(table_row(
        &[
            "n".into(),
            "bitonic".into(),
            "odd-even".into(),
            "saving".into(),
        ],
        &[4, 9, 10, 8],
    ));
    for n in [4usize, 8, 16, 32] {
        let bi: usize = bitonic_comparators(n).iter().map(Vec::len).sum();
        let oe: usize = odd_even_comparators(n).iter().map(Vec::len).sum();
        s.line(table_row(
            &[
                n.to_string(),
                bi.to_string(),
                oe.to_string(),
                format!("{:.0}%", 100.0 * (bi - oe) as f64 / bi as f64),
            ],
            &[4, 9, 10, 8],
        ));
    }
    let (bdag, bstages) = bitonic_network(4);
    s.check(
        "bitonic n=4 paired schedule is IC-optimal",
        ic_sched::optimal::is_ic_optimal(&bdag, &comparator_schedule(4, &bstages)).unwrap(),
    );
    let (odag, _) = odd_even_network(4);
    s.check(
        "odd-even n=4 admits NO IC-optimal schedule (pass-through ΔE=0 steps)",
        !admits_ic_optimal(&odag).unwrap(),
    );
    s.line("  => §5.2's IC-optimality claim is scoped to pure iterated-B networks.".to_string());
    s
}

/// AB3 — "almost optimal" scheduling (§8, future-work thrust 2): exact
/// minimum-regret schedules for dags that admit no IC-optimal schedule.
pub fn ab3_almost_optimal(_ctx: &Ctx) -> Section {
    let mut s = Section::new(
        "AB3",
        "Ablation: minimum-regret scheduling of non-admitting dags (§8 thrust 2)",
    );
    // Two certified non-admitters: the unary-chain tree and the n=4
    // odd-even merge network.
    let unary = {
        let mut arcs = vec![(0u32, 1), (1, 2), (0, 3)];
        for i in 0..5u32 {
            arcs.push((2, 4 + i));
        }
        arcs.push((3, 9));
        arcs.push((3, 10));
        ic_dag::builder::from_arcs(11, &arcs).unwrap()
    };
    let (oe, _) = odd_even_network(4);
    for (name, dag) in [("unary-chain tree", unary), ("odd-even net n=4", oe)] {
        s.check(
            &format!("{name}: admits no IC-optimal schedule"),
            !admits_ic_optimal(&dag).unwrap(),
        );
        let (min, sched) = min_regret_schedule(&dag).unwrap();
        s.check(
            &format!("{name}: exact min regret = {min} > 0, schedule attains it"),
            min > 0 && regret(&dag, &sched).unwrap() == min,
        );
        let greedy = greedy_regret_schedule(&dag);
        let rg = regret(&dag, &greedy).unwrap();
        s.line(format!(
            "  {name}: greedy lookahead regret {rg} (exact minimum {min})"
        ));
        let mut best_heur = u64::MAX;
        for p in Policy::all(7) {
            let r = regret(&dag, &schedule_with(&dag, &p)).unwrap();
            best_heur = best_heur.min(r);
        }
        s.check(
            &format!(
                "{name}: min-regret schedule beats or ties every heuristic (best {best_heur})"
            ),
            min <= best_heur,
        );
    }
    // Sanity: on an admitting dag, the minimum regret is 0.
    let mesh = out_mesh(4);
    let (min, _) = min_regret_schedule(&mesh).unwrap();
    s.check_eq("mesh(4): minimum regret", min, 0);
    s
}

/// AB4 — communication-aware granularity (§8, future-work thrust 3 +
/// the multi-granularity theme): on the simulated server, as per-arc
/// communication cost rises, the coarsened mesh overtakes the fine one.
pub fn ab4_comm_granularity(_ctx: &Ctx) -> Section {
    let mut s = Section::new(
        "AB4",
        "Ablation: communication cost vs task granularity (simulated server)",
    );
    let levels = 12usize;
    let fine = out_mesh(levels);
    let fine_sched = out_mesh_schedule(&fine);
    let b = 3usize;
    let q = coarsen_mesh(levels, b);
    let coarse_sched = Schedule::in_id_order(&q.dag);
    // Coarse tasks carry their whole block's compute.
    let weights: Vec<f64> = q.members.iter().map(|m| m.len() as f64).collect();
    let stats = cluster_stats(&fine, &q);
    s.line(format!(
        "  mesh({levels}): {} fine tasks vs {} coarse (b = {b}); max coarse compute {}, max cross-arcs {}",
        fine.num_nodes(),
        q.dag.num_nodes(),
        stats.iter().map(|&(g, _)| g).max().unwrap(),
        stats.iter().map(|&(_, x)| x).max().unwrap(),
    ));
    s.line(table_row(
        &[
            "comm".into(),
            "fine".into(),
            "coarse".into(),
            "winner".into(),
        ],
        &[6, 9, 9, 8],
    ));
    let run = |dag: &ic_dag::Dag, sched: &Schedule, weights: Option<&Vec<f64>>, comm: f64| -> f64 {
        let mut acc = 0.0;
        for seed in 0..6u64 {
            let cfg = SimConfig {
                clients: ClientProfile {
                    num_clients: 6,
                    mean_service: 1.0,
                    jitter: 0.3,
                    straggler_prob: 0.0,
                    straggler_factor: 1.0,
                    failure_prob: 0.0,
                    comm_cost_per_arc: comm,
                    speed_factors: None,
                },
                seed,
                task_weights: weights.cloned(),
            };
            acc += simulate(dag, sched, &cfg).makespan;
        }
        acc / 6.0
    };
    let mut fine_wins_at_zero = false;
    let mut coarse_wins_at_high = false;
    for comm in [0.0f64, 0.5, 1.0, 2.0, 4.0] {
        let mf = run(&fine, &fine_sched, None, comm);
        let mc = run(&q.dag, &coarse_sched, Some(&weights), comm);
        let winner = if mf < mc { "fine" } else { "coarse" };
        if comm == 0.0 && mf <= mc {
            fine_wins_at_zero = true;
        }
        if comm >= 4.0 && mc < mf {
            coarse_wins_at_high = true;
        }
        s.line(table_row(
            &[
                format!("{comm:.1}"),
                format!("{mf:.1}"),
                format!("{mc:.1}"),
                winner.into(),
            ],
            &[6, 9, 9, 8],
        ));
    }
    s.check(
        "fine granularity wins (or ties) with free communication",
        fine_wins_at_zero,
    );
    s.check(
        "coarse granularity wins under expensive communication",
        coarse_wins_at_high,
    );
    s
}
