//! The experiment registry: one entry per paper artifact.
//!
//! Each experiment reconstructs its artifact, re-derives the paper's
//! schedule, verifies the claims that accompany it (exhaustively at
//! checkable sizes), contrasts against heuristic baselines, and returns
//! a [`Section`]. See `DESIGN.md` §5 for the artifact ↔ experiment
//! index and `EXPERIMENTS.md` for the recorded outcomes.

use std::path::PathBuf;

use ic_dag::dot::{to_dot, DotOptions};
use ic_dag::Dag;
use ic_sched::Schedule;

use crate::report::Section;

pub mod ablations;
pub mod blocks;
pub mod butterfly;
pub mod expansion;
pub mod matmul;
pub mod prefix;
pub mod sim;
pub mod wavefront;

/// Shared experiment context.
#[derive(Debug, Default)]
pub struct Ctx {
    /// When set, every constructed figure is also written as Graphviz
    /// DOT into this directory.
    pub dot_dir: Option<PathBuf>,
}

impl Ctx {
    /// Write `dag` (optionally annotated with a schedule order) as
    /// `<dot_dir>/<name>.dot`, if a DOT directory was requested.
    pub fn dot(&self, name: &str, dag: &Dag, order: Option<&Schedule>) {
        let Some(dir) = &self.dot_dir else { return };
        let opts = DotOptions {
            name: name.to_string(),
            order: order.map(|s| s.order().to_vec()),
            ..DotOptions::default()
        };
        let text = to_dot(dag, &opts);
        let path = dir.join(format!("{name}.dot"));
        if let Err(e) = std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, text)) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
    }
}

/// An experiment runner.
pub type Runner = fn(&Ctx) -> Section;

/// Every experiment, in paper order: `(artifact id, runner)`.
pub fn registry() -> Vec<(&'static str, Runner)> {
    vec![
        ("F1", blocks::fig01_vee_and_lambda as Runner),
        ("F2", expansion::fig02_diamond),
        ("F3", expansion::fig03_coarsened_diamond),
        ("F4", expansion::fig04_alternations),
        ("T1", expansion::table1_composition_types),
        ("F5", wavefront::fig05_meshes),
        ("F6", wavefront::fig06_w_decomposition),
        ("F7", wavefront::fig07_mesh_coarsening),
        ("F8", blocks::fig08_butterfly_block),
        ("F9", butterfly::fig09_networks),
        ("F10", butterfly::fig10_block_composition),
        ("S5a", butterfly::sec52_sorting),
        ("S5b", butterfly::sec52_fft_convolution),
        ("F11", prefix::fig11_parallel_prefix),
        ("F12", prefix::fig12_n_dag_decomposition),
        ("F13", prefix::fig13_dlt),
        ("F14", blocks::fig14_vee3),
        ("F15", prefix::fig15_dlt_ternary),
        ("F16", prefix::fig16_graph_paths),
        ("F17", matmul::fig17_matmul),
        ("SIM", sim::sim_comparison),
        ("AB1", ablations::ab1_batched_scheduling),
        ("AB2", ablations::ab2_network_scope),
        ("AB3", ablations::ab3_almost_optimal),
        ("AB4", ablations::ab4_comm_granularity),
    ]
}

/// Run all experiments (or the subset whose ids appear in `only`),
/// returning the sections in paper order.
pub fn run_all(ctx: &Ctx, only: &[String]) -> Vec<Section> {
    registry()
        .into_iter()
        .filter(|(id, _)| only.is_empty() || only.iter().any(|o| o.eq_ignore_ascii_case(id)))
        .map(|(_, f)| f(ctx))
        .collect()
}
