//! Experiments F1, F8, F14: the building blocks and their priorities.

use ic_families::primitives::{butterfly_block, cycle_dag, ic_schedule, lambda, vee, vee_d};
use ic_sched::optimal::{every_nonsink_order_ic_optimal, is_ic_optimal};
use ic_sched::priority::has_priority;
use ic_sched::quality::area_under;
use ic_sched::Schedule;

use crate::report::{fmt_profile, Section};

use super::Ctx;

/// Fig. 1: the Vee and Lambda dags; duality; the priorities `V ▷ V`,
/// `V ▷ Λ`, `Λ ▷ Λ` (and the failure of `Λ ▷ V`).
pub fn fig01_vee_and_lambda(ctx: &Ctx) -> Section {
    let mut s = Section::new("F1", "Fig. 1: the Vee dag V and Lambda dag Λ");
    let v = vee();
    let l = lambda();
    ctx.dot("fig01_vee", &v, Some(&ic_schedule(&v)));
    ctx.dot("fig01_lambda", &l, Some(&ic_schedule(&l)));

    s.check_eq(
        "V: (nodes, sources, sinks)",
        (v.num_nodes(), v.num_sources(), v.num_sinks()),
        (3, 1, 2),
    );
    s.check_eq(
        "Λ: (nodes, sources, sinks)",
        (l.num_nodes(), l.num_sources(), l.num_sinks()),
        (3, 2, 1),
    );
    let dual_v = ic_dag::dual(&v);
    s.check(
        "Λ and V are dual (degree profile of dual(V) equals Λ's)",
        dual_v.num_sources() == l.num_sources() && dual_v.num_sinks() == l.num_sinks(),
    );
    let (sv, sl) = (ic_schedule(&v), ic_schedule(&l));
    s.line(format!("  E_V = {}", fmt_profile(&sv.nonsink_profile(&v))));
    s.line(format!("  E_Λ = {}", fmt_profile(&sl.nonsink_profile(&l))));
    s.check("V ▷ V", has_priority(&v, &sv, &v, &sv));
    s.check("V ▷ Λ", has_priority(&v, &sv, &l, &sl));
    s.check("Λ ▷ Λ", has_priority(&l, &sl, &l, &sl));
    s.check("not Λ ▷ V (asymmetry)", !has_priority(&l, &sl, &v, &sv));
    s.check(
        "every nonsink order of V is IC-optimal",
        every_nonsink_order_ic_optimal(&v).unwrap(),
    );
    s.check(
        "every nonsink order of Λ is IC-optimal",
        every_nonsink_order_ic_optimal(&l).unwrap(),
    );
    s
}

/// Fig. 8: the butterfly building block `B`; `B ▷ B`; the paired-source
/// schedule is IC-optimal.
pub fn fig08_butterfly_block(ctx: &Ctx) -> Section {
    let mut s = Section::new("F8", "Fig. 8: the butterfly building block B");
    let b = butterfly_block();
    let sb = ic_schedule(&b);
    ctx.dot("fig08_block", &b, Some(&sb));
    s.check_eq("B: (nodes, arcs)", (b.num_nodes(), b.num_arcs()), (4, 4));
    s.line(format!("  E_B = {}", fmt_profile(&sb.nonsink_profile(&b))));
    s.check(
        "paired schedule is IC-optimal",
        is_ic_optimal(&b, &sb).unwrap(),
    );
    s.check(
        "B ▷ B (enables iterated composition)",
        has_priority(&b, &sb, &b, &sb),
    );
    // Also show C4 here for contrast (used later by F17): profile dip.
    let c4 = cycle_dag(4);
    let sc = ic_schedule(&c4);
    s.line(format!(
        "  E_C4 = {} (cyclic-source schedule)",
        fmt_profile(&sc.nonsink_profile(&c4))
    ));
    s.check(
        "C4 cyclic schedule is IC-optimal",
        is_ic_optimal(&c4, &sc).unwrap(),
    );
    s
}

/// Fig. 14: the 3-prong Vee dag `V₃` and the chain `V₃ ▷ V₃ ▷ Λ ▷ Λ`.
pub fn fig14_vee3(ctx: &Ctx) -> Section {
    let mut s = Section::new("F14", "Fig. 14: the 3-prong Vee dag V₃");
    let v3 = vee_d(3);
    let l = lambda();
    ctx.dot("fig14_vee3", &v3, None);
    s.check_eq(
        "V₃: (nodes, sinks)",
        (v3.num_nodes(), v3.num_sinks()),
        (4, 3),
    );
    let (s3, sl) = (ic_schedule(&v3), ic_schedule(&l));
    s.line(format!(
        "  E_V₃ = {}",
        fmt_profile(&s3.nonsink_profile(&v3))
    ));
    s.check("V₃ ▷ V₃", has_priority(&v3, &s3, &v3, &s3));
    s.check("V₃ ▷ Λ", has_priority(&v3, &s3, &l, &sl));
    s.check("Λ ▷ Λ", has_priority(&l, &sl, &l, &sl));
    // Wider prongs only increase the eligibility area.
    let areas: Vec<u64> = (2..=5)
        .map(|d| {
            let vd = vee_d(d);
            area_under(&Schedule::in_id_order(&vd).profile(&vd))
        })
        .collect();
    s.line(format!("  area under E for V_d, d = 2..5: {areas:?}"));
    s.check(
        "area grows with prong count",
        areas.windows(2).all(|w| w[1] > w[0]),
    );
    s
}
