//! Experiments F2, F3, F4, T1: expansion–reduction computations.

use ic_dag::NodeId;
use ic_families::diamond::{
    alternating, diamond_chain, diamond_from_out_tree, in_tree_led, out_tree_tailed, Component,
};
use ic_families::trees::{complete_in_tree, complete_out_tree, random_branching_out_tree};
use ic_sched::heuristics::{schedule_with, Policy};
use ic_sched::optimal::{is_ic_optimal, optimal_envelope};
use ic_sched::quality::{area_under, dominates};

use crate::report::{fmt_profile, Section};

use super::Ctx;

/// Fig. 2: the out-tree ⇑ in-tree diamond; its phase schedule attains
/// the optimal envelope; heuristics are dominated.
pub fn fig02_diamond(ctx: &Ctx) -> Section {
    let mut s = Section::new("F2", "Fig. 2: expansion-reduction diamond T ⇑ T̃");
    let t = complete_out_tree(2, 2);
    let d = diamond_from_out_tree(&t).unwrap();
    let sched = d.ic_schedule().unwrap();
    ctx.dot("fig02_diamond", &d.dag, Some(&sched));
    s.check_eq("diamond nodes (depth-2 binary)", d.dag.num_nodes(), 10);
    s.check_eq(
        "(sources, sinks)",
        (d.dag.num_sources(), d.dag.num_sinks()),
        (1, 1),
    );
    let profile = sched.profile(&d.dag);
    let envelope = optimal_envelope(&d.dag).unwrap();
    s.line(format!(
        "  phase schedule profile  = {}",
        fmt_profile(&profile)
    ));
    s.line(format!(
        "  optimal envelope        = {}",
        fmt_profile(&envelope)
    ));
    s.check("phase schedule is IC-optimal", profile == envelope);
    for p in Policy::all(17) {
        let hp = schedule_with(&d.dag, &p).profile(&d.dag);
        s.check(
            &format!(
                "IC-optimal dominates {} (area {} vs {})",
                p.name(),
                area_under(&profile),
                area_under(&hp)
            ),
            dominates(&profile, &hp),
        );
    }
    // Scale check: deeper diamonds stay IC-optimally schedulable.
    for depth in [3usize, 4] {
        let t = complete_out_tree(2, depth);
        let d = diamond_from_out_tree(&t).unwrap();
        let ok = if d.dag.num_nodes() <= 24 {
            is_ic_optimal(&d.dag, &d.ic_schedule().unwrap()).unwrap()
        } else {
            // Beyond exhaustive reach: validate the schedule.
            ic_dag::traversal::is_topological(&d.dag, d.ic_schedule().unwrap().order())
        };
        s.check(
            &format!(
                "depth-{depth} diamond scheduled ({} nodes)",
                d.dag.num_nodes()
            ),
            ok,
        );
    }
    s
}

/// Fig. 3: coarsening the diamond by truncating mirrored subtree pairs.
pub fn fig03_coarsened_diamond(ctx: &Ctx) -> Section {
    let mut s = Section::new("F3", "Fig. 3: coarsening tasks in the Fig. 2 diamond");
    let t = complete_out_tree(2, 2);
    let d = diamond_from_out_tree(&t).unwrap();
    let q = d.coarsen_at(&[NodeId(1), NodeId(2)]).unwrap();
    ctx.dot("fig03_coarse", &q.dag, None);
    s.check_eq("fine nodes", d.dag.num_nodes(), 10);
    s.check_eq("coarse nodes", q.dag.num_nodes(), 4);
    s.line(format!(
        "  granularities: {:?}",
        (0..q.num_clusters())
            .map(|c| q.granularity(NodeId::new(c)))
            .collect::<Vec<_>>()
    ));
    s.check(
        "coarsened diamond admits an IC-optimal schedule",
        ic_sched::optimal::admits_ic_optimal(&q.dag).unwrap(),
    );
    // Partial coarsening (only one branch) — the Fig. 3 shape proper.
    let q1 = d.coarsen_at(&[NodeId(1)]).unwrap();
    s.check_eq("one-branch coarse nodes", q1.dag.num_nodes(), 7);
    s.check(
        "one-branch coarsening admits an IC-optimal schedule",
        ic_sched::optimal::admits_ic_optimal(&q1.dag).unwrap(),
    );
    s
}

/// Fig. 4: sample alternating expansion–reduction compositions,
/// including the unequal-leaf alternation (rightmost dag of the figure).
pub fn fig04_alternations(ctx: &Ctx) -> Section {
    let mut s = Section::new("F4", "Fig. 4: alternating expansion-reduction chains");
    // Leftmost: in-tree then out-tree, forced topologically.
    let chain = alternating(vec![
        Component::InTree(complete_in_tree(2, 2)),
        Component::OutTree(complete_out_tree(2, 2)),
    ])
    .unwrap();
    let sched = chain.ic_schedule().unwrap();
    ctx.dot("fig04_in_then_out", &chain.dag, Some(&sched));
    s.check_eq("T' ⇑ T nodes", chain.dag.num_nodes(), 13);
    s.check(
        "T' ⇑ T schedule is IC-optimal",
        is_ic_optimal(&chain.dag, &sched).unwrap(),
    );

    // Rightmost: leaf counts of different diamonds need not match.
    let t_small = complete_out_tree(2, 1);
    let t_large = complete_out_tree(2, 2);
    let uneven = diamond_chain(&[&t_small, &t_large]).unwrap();
    let us = uneven.ic_schedule().unwrap();
    ctx.dot("fig04_uneven", &uneven.dag, Some(&us));
    s.check(
        "uneven diamond chain schedule is IC-optimal",
        is_ic_optimal(&uneven.dag, &us).unwrap(),
    );

    // Irregular (random, uniform-arity) components.
    let mut all_ok = true;
    for seed in 0..4u64 {
        let t = random_branching_out_tree(7, 2, seed);
        let d = diamond_from_out_tree(&t).unwrap();
        all_ok &= is_ic_optimal(&d.dag, &d.ic_schedule().unwrap()).unwrap();
    }
    s.check(
        "irregular-tree diamonds are IC-optimally scheduled (4 seeds)",
        all_ok,
    );
    s
}

/// Table 1: the three alternating composition types admit IC-optimal
/// schedules — parameter sweep over component shapes.
pub fn table1_composition_types(ctx: &Ctx) -> Section {
    let mut s = Section::new(
        "T1",
        "Table 1: diamond compositions admitting IC-optimal schedules",
    );
    let shapes: Vec<(usize, usize)> = vec![(2, 1), (2, 2), (3, 1)];
    let tree = |a: usize, d: usize| complete_out_tree(a, d);

    // Row 1: D_0 ⇑ ... ⇑ D_n.
    for (i, window) in shapes.windows(2).enumerate() {
        let (a0, d0) = window[0];
        let (a1, d1) = window[1];
        let (t0, t1) = (tree(a0, d0), tree(a1, d1));
        let chain = diamond_chain(&[&t0, &t1]).unwrap();
        let sched = chain.ic_schedule().unwrap();
        let ok = if chain.dag.num_nodes() <= 24 {
            is_ic_optimal(&chain.dag, &sched).unwrap()
        } else {
            ic_dag::traversal::is_topological(&chain.dag, sched.order())
        };
        s.check(
            &format!(
                "row 1 [{i}]: D({a0},{d0}) ⇑ D({a1},{d1}) — {} nodes",
                chain.dag.num_nodes()
            ),
            ok,
        );
        if i == 0 {
            ctx.dot("table1_row1", &chain.dag, Some(&sched));
        }
    }

    // Row 2: T^(in) ⇑ D_1 ⇑ ... .
    let lead = complete_in_tree(2, 1);
    let t1 = tree(2, 1);
    let chain2 = in_tree_led(&lead, &[&t1]).unwrap();
    let sched2 = chain2.ic_schedule().unwrap();
    s.check(
        &format!("row 2: Λ-led chain — {} nodes", chain2.dag.num_nodes()),
        is_ic_optimal(&chain2.dag, &sched2).unwrap(),
    );
    ctx.dot("table1_row2", &chain2.dag, Some(&sched2));

    // Row 3: ... ⇑ T^(out).
    let tail = tree(2, 2);
    let chain3 = out_tree_tailed(&[&t1], &tail).unwrap();
    let sched3 = chain3.ic_schedule().unwrap();
    s.check(
        &format!(
            "row 3: out-tree-tailed chain — {} nodes",
            chain3.dag.num_nodes()
        ),
        is_ic_optimal(&chain3.dag, &sched3).unwrap(),
    );
    ctx.dot("table1_row3", &chain3.dag, Some(&sched3));

    // A longer mixed chain, schedule validated structurally.
    let trees: Vec<_> = (0..4).map(|i| tree(2, 1 + i % 2)).collect();
    let refs: Vec<&_> = trees.iter().collect();
    let long = diamond_chain(&refs).unwrap();
    let ls = long.ic_schedule().unwrap();
    s.check(
        &format!(
            "long chain of 4 diamonds — {} nodes, schedule valid",
            long.dag.num_nodes()
        ),
        ic_dag::traversal::is_topological(&long.dag, ls.order()),
    );
    s
}
