//! Experiment F17: the matrix-multiplication dag.

use ic_apps::matmul::{multiply_recursive, multiply_via_dag, Matrix};
use ic_families::matmul::{matmul_dag, paper_schedule, recursive_matmul, theorem_schedule};
use ic_sched::optimal::{is_ic_optimal, optimal_envelope};
use ic_sched::quality::dominates;

use crate::report::{fmt_profile, Section};

use super::Ctx;

/// Fig. 17: the dag `M = C₄ ⇑ C₄ ⇑ Λ⁴`; the Theorem 2.1 schedule attains
/// the envelope; the paper's literal §7.2 product order does not
/// (reproduction finding — see EXPERIMENTS.md); the dag actually
/// multiplies matrices; recursion refines granularity.
pub fn fig17_matmul(ctx: &Ctx) -> Section {
    let mut s = Section::new("F17", "Fig. 17: the matrix-multiplication dag M");
    let m = matmul_dag();
    let thm = theorem_schedule();
    let paper = paper_schedule();
    ctx.dot("fig17_m", &m, Some(&thm));
    s.check_eq("M: (nodes, arcs)", (m.num_nodes(), m.num_arcs()), (20, 24));
    s.check_eq(
        "(sources=operands, sinks=sums)",
        (m.num_sources(), m.num_sinks()),
        (8, 4),
    );

    let envelope = optimal_envelope(&m).unwrap();
    let p_thm = thm.profile(&m);
    let p_paper = paper.profile(&m);
    s.line(format!(
        "  envelope              = {}",
        fmt_profile(&envelope)
    ));
    s.line(format!(
        "  Theorem 2.1 (Λ-paired) = {}  {}",
        fmt_profile(&p_thm),
        crate::report::sparkline(&p_thm)
    ));
    s.line(format!(
        "  paper §7.2 order       = {}  {}",
        fmt_profile(&p_paper),
        crate::report::sparkline(&p_paper)
    ));
    s.check(
        "Theorem 2.1 order is IC-optimal",
        is_ic_optimal(&m, &thm).unwrap(),
    );
    s.check(
        "paper's literal product order is valid but NOT pointwise IC-optimal (erratum)",
        ic_dag::traversal::is_topological(&m, paper.order()) && p_paper != envelope,
    );
    s.check(
        "Theorem order dominates the paper's order",
        dominates(&p_thm, &p_paper),
    );

    // The dag multiplies real matrices (dag-driven == naive).
    let a = Matrix::from_fn(8, |i, j| ((i * 3 + j) as f64 * 0.43).sin());
    let b = Matrix::from_fn(8, |i, j| ((i + j * 5) as f64 * 0.11).cos());
    let naive = a.multiply_naive(&b);
    let via_dag = multiply_via_dag(&a, &b, 2);
    let max_err = (0..8)
        .flat_map(|i| (0..8).map(move |j| (i, j)))
        .map(|(i, j)| (naive.get(i, j) - via_dag.get(i, j)).abs())
        .fold(0.0f64, f64::max);
    s.check(
        &format!("dag-driven 8x8 multiply matches naive, max err {max_err:.2e}"),
        max_err < 1e-10,
    );
    let rec = multiply_recursive(&a, &b, 2);
    let rec_err = (0..8)
        .flat_map(|i| (0..8).map(move |j| (i, j)))
        .map(|(i, j)| (naive.get(i, j) - rec.get(i, j)).abs())
        .fold(0.0f64, f64::max);
    s.check(
        &format!("recursive (7.1) multiply matches naive, max err {rec_err:.2e}"),
        rec_err < 1e-10,
    );

    // Granularity refinement: recursive dag expansion.
    for depth in 0..=2usize {
        let r = recursive_matmul(depth);
        s.line(format!(
            "  recursive M at depth {depth}: {} nodes, {} arcs",
            r.num_nodes(),
            r.num_arcs()
        ));
    }
    s.check_eq("depth-1 node count", recursive_matmul(1).num_nodes(), 180);
    s
}
