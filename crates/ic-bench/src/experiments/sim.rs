//! Experiment SIM: the server simulation — what IC-optimality buys.

use ic_dag::Dag;
use ic_families::butterfly::{butterfly, butterfly_schedule};
use ic_families::diamond::diamond_from_out_tree;
use ic_families::dlt::dlt_prefix;
use ic_families::mesh::{out_mesh, out_mesh_schedule};
use ic_families::trees::complete_out_tree;
use ic_sched::heuristics::{schedule_with, Policy};
use ic_sched::Schedule;
use ic_sim::{simulate, ClientProfile, SimConfig};

use crate::report::{table_row, Section};

use super::Ctx;

/// One averaged row of the policy table: label plus the seven metric
/// columns (gridlock, batch-misses, mean pool, makespan, utilization,
/// idle, burst-3).
type PolicyRow = (String, f64, f64, f64, f64, f64, f64, f64);

fn workloads() -> Vec<(&'static str, Dag, Schedule)> {
    let d = diamond_from_out_tree(&complete_out_tree(2, 4)).unwrap();
    let ds = d.ic_schedule().unwrap();
    let m = out_mesh(10);
    let ms = out_mesh_schedule(&m);
    let b = butterfly(4);
    let bs = butterfly_schedule(4);
    let l = dlt_prefix(16);
    let ls = l.ic_schedule().unwrap();
    vec![
        ("diamond(2,4)", d.dag, ds),
        ("mesh(10)", m, ms),
        ("butterfly(4)", b, bs),
        ("DLT L_16", l.dag, ls),
    ]
}

/// §2.2 scenarios, measured: for each workload dag, compare the
/// IC-optimal schedule against the heuristic baselines as *allocation
/// policies* on a simulated IC server — gridlock events, batch
/// satisfaction, mean ELIGIBLE pool, makespan, utilization. Averages
/// over several seeds.
pub fn sim_comparison(_ctx: &Ctx) -> Section {
    let mut s = Section::new(
        "SIM",
        "IC server simulation: IC-optimal vs heuristic allocation",
    );
    let seeds: Vec<u64> = (0..16).collect();
    let widths = [14usize, 11, 9, 10, 10, 9, 9, 9];
    for (name, dag, ic) in workloads() {
        s.line(format!(
            "  -- workload {name} ({} tasks) --",
            dag.num_nodes()
        ));
        s.line(table_row(
            &[
                "policy".into(),
                "gridlock".into(),
                "batch-".into(),
                "meanpool".into(),
                "makespan".into(),
                "util".into(),
                "idle".into(),
                "burst3".into(),
            ],
            &widths,
        ));
        let mut rows: Vec<PolicyRow> = Vec::new();
        let mut run = |label: String, sched: &Schedule| {
            let mut acc = (0.0f64, 0.0f64, 0.0f64, 0.0f64, 0.0f64, 0.0f64, 0.0f64);
            for &seed in &seeds {
                let cfg = SimConfig {
                    clients: ClientProfile {
                        num_clients: 6,
                        mean_service: 1.0,
                        jitter: 0.6,
                        straggler_prob: 0.08,
                        straggler_factor: 6.0,
                        failure_prob: 0.0,
                        comm_cost_per_arc: 0.0,
                        speed_factors: None,
                    },
                    seed,
                    task_weights: None,
                };
                let r = simulate(&dag, sched, &cfg);
                acc.0 += r.gridlock_events as f64;
                acc.1 += r.unsatisfied_at_batch as f64;
                acc.2 += r.mean_pool();
                acc.3 += r.makespan;
                acc.4 += r.utilization;
                acc.5 += r.idle_time;
                acc.6 += r.batch_service_fraction(3);
            }
            let k = seeds.len() as f64;
            rows.push((
                label,
                acc.0 / k,
                acc.1 / k,
                acc.2 / k,
                acc.3 / k,
                acc.4 / k,
                acc.5 / k,
                acc.6 / k,
            ));
        };
        run("IC-OPTIMAL".into(), &ic);
        for p in Policy::all(99) {
            let sched = schedule_with(&dag, &p);
            run(p.name().to_string(), &sched);
        }
        for (label, g, b, mp, mk, u, idle, burst) in &rows {
            s.line(table_row(
                &[
                    label.clone(),
                    format!("{g:.2}"),
                    format!("{b:.1}"),
                    format!("{mp:.2}"),
                    format!("{mk:.2}"),
                    format!("{u:.3}"),
                    format!("{idle:.2}"),
                    format!("{burst:.2}"),
                ],
                &widths,
            ));
        }
        // The headline comparison: IC-optimal's mean pool should be at
        // least as high as every heuristic's, and its gridlock count at
        // most marginally above the best.
        let ic_row = rows[0].clone();
        let best_pool = rows[1..].iter().map(|r| r.3).fold(0.0f64, f64::max);
        s.check(
            &format!(
                "{name}: IC-optimal mean pool {:.2} >= best heuristic {:.2} - 5%",
                ic_row.3, best_pool
            ),
            ic_row.3 >= best_pool * 0.95,
        );
        let min_gridlock = rows[1..].iter().map(|r| r.1).fold(f64::INFINITY, f64::min);
        s.check(
            &format!(
                "{name}: IC-optimal gridlock {:.2} <= min heuristic {:.2} + 1",
                ic_row.1, min_gridlock
            ),
            ic_row.1 <= min_gridlock + 1.0,
        );
    }
    s
}
