//! Experiments F9, F10, S5a, S5b: butterfly-structured computations.

use ic_apps::fft::{dft_naive, fft_via_butterfly};
use ic_apps::numeric::Complex;
use ic_apps::poly::{convolve_fft, convolve_naive};
use ic_apps::sorting::bitonic_sort_via_dag;
use ic_dag::NodeId;
use ic_families::butterfly::{
    butterfly, butterfly_as_block_chain, butterfly_schedule, butterfly_schedule_via_blocks,
    coarsen_butterfly, executes_block_pairs_consecutively,
};
use ic_families::sorting::{bitonic_network, bitonic_schedule};
use ic_sched::heuristics::{schedule_with, Policy};
use ic_sched::optimal::is_ic_optimal;
use ic_sched::quality::{area_under, dominates};

use crate::report::{fmt_profile, Section};

use super::Ctx;

/// Fig. 9: the 2- and 3-dimensional butterfly networks.
pub fn fig09_networks(ctx: &Ctx) -> Section {
    let mut s = Section::new("F9", "Fig. 9: butterfly networks B_2 and B_3");
    let b2 = butterfly(2);
    let b3 = butterfly(3);
    let s2 = butterfly_schedule(2);
    let s3 = butterfly_schedule(3);
    ctx.dot("fig09_b2", &b2, Some(&s2));
    ctx.dot("fig09_b3", &b3, Some(&s3));
    s.check_eq(
        "B_2: (nodes, arcs)",
        (b2.num_nodes(), b2.num_arcs()),
        (12, 16),
    );
    s.check_eq(
        "B_3: (nodes, arcs)",
        (b3.num_nodes(), b3.num_arcs()),
        (32, 48),
    );
    s.line(format!(
        "  B_2 paired-schedule profile = {}",
        fmt_profile(&s2.profile(&b2))
    ));
    s.check(
        "B_2 paired schedule is IC-optimal",
        is_ic_optimal(&b2, &s2).unwrap(),
    );
    s.check(
        "B_3 schedule executes every block's sources consecutively",
        executes_block_pairs_consecutively(3, &s3),
    );
    s.check(
        "B_3 schedule is a valid execution order",
        ic_dag::traversal::is_topological(&b3, s3.order()),
    );
    // Heuristic contrast on B_2.
    let opt = s2.profile(&b2);
    for p in Policy::all(23) {
        let hp = schedule_with(&b2, &p).profile(&b2);
        s.line(format!(
            "  {:<10} area {:>3} (optimal {:>3}) dominated: {}",
            p.name(),
            area_under(&hp),
            area_under(&opt),
            dominates(&opt, &hp)
        ));
    }
    s
}

/// Fig. 10: `B_d` as an iterated composition of blocks; Theorem 2.1;
/// granularity via the band decomposition (`B_{a+b}` of `B_b` nodes).
pub fn fig10_block_composition(ctx: &Ctx) -> Section {
    let mut s = Section::new(
        "F10",
        "Fig. 10: B_d as a composition of blocks; granularity",
    );
    for d in 1..=3usize {
        let (composed, maps, _) = butterfly_as_block_chain(d);
        let direct = butterfly(d);
        s.check_eq(
            &format!("block chain reconstructs B_{d} (nodes, arcs)"),
            (composed.num_nodes(), composed.num_arcs()),
            (direct.num_nodes(), direct.num_arcs()),
        );
        s.check_eq(
            &format!("B_{d} block count"),
            maps.len(),
            d * (1 << (d - 1)),
        );
    }
    let via_blocks = butterfly_schedule_via_blocks(2).unwrap();
    let (composite, _, _) = butterfly_as_block_chain(2);
    ctx.dot("fig10_block_chain", &composite, Some(&via_blocks));
    s.check(
        "Theorem 2.1 schedule over the block chain is IC-optimal (B_2)",
        is_ic_optimal(&composite, &via_blocks).unwrap(),
    );
    // Granularity: the band quotient of B_4 with b = 2 is the radix-4
    // butterfly; with b = d everything collapses.
    let q = coarsen_butterfly(4, 2);
    s.check_eq("coarsen(B_4, b=2): clusters", q.dag.num_nodes(), 8);
    s.check_eq(
        "radix-4 block out-degree",
        (0..4)
            .map(|c| q.dag.out_degree(NodeId(c)))
            .collect::<Vec<_>>(),
        vec![4, 4, 4, 4],
    );
    s.line(format!(
        "  cluster granularities: band 0 = {}, band 1 = {}",
        q.granularity(NodeId(0)),
        q.granularity(NodeId(4))
    ));
    s.check(
        "coarsened butterfly admits an IC-optimal schedule",
        ic_sched::optimal::admits_ic_optimal(&q.dag).unwrap(),
    );
    s.check_eq(
        "coarsen(B_3, b=3) collapses to one task",
        coarsen_butterfly(3, 3).dag.num_nodes(),
        1,
    );
    s
}

/// §5.2 (sorting): bitonic comparator networks sort, and their dags are
/// IC-optimally scheduled by the paired stage order.
pub fn sec52_sorting(ctx: &Ctx) -> Section {
    let mut s = Section::new("S5a", "§5.2: comparator-network sorting (bitonic)");
    let (net4, stages4) = bitonic_network(4);
    let sched4 = bitonic_schedule(4, &stages4);
    ctx.dot("sec52_bitonic4", &net4, Some(&sched4));
    s.check_eq(
        "n=4 network: (stages, nodes)",
        (stages4.len(), net4.num_nodes()),
        (3, 16),
    );
    s.check(
        "n=4 paired schedule is IC-optimal",
        is_ic_optimal(&net4, &sched4).unwrap(),
    );
    for n in [8usize, 16, 32] {
        let (net, stages) = bitonic_network(n);
        let sched = bitonic_schedule(n, &stages);
        s.check(
            &format!("n={n}: schedule valid over {} nodes", net.num_nodes()),
            ic_dag::traversal::is_topological(&net, sched.order()),
        );
    }
    // Actually sort through the dag.
    let mut sorted_ok = true;
    let mut state = 0xBEEFu64;
    for n in [4usize, 8, 16, 32, 64] {
        let xs: Vec<i64> = (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 1000) as i64 - 500
            })
            .collect();
        let got = bitonic_sort_via_dag(&xs);
        let mut want = xs.clone();
        want.sort();
        sorted_ok &= got == want;
    }
    s.check(
        "dag-driven bitonic sort sorts (n = 4..64, random keys)",
        sorted_ok,
    );
    s
}

/// §5.2 (convolutions): the FFT over `B_d` matches the naive DFT;
/// FFT-based polynomial products match naive convolution.
pub fn sec52_fft_convolution(_ctx: &Ctx) -> Section {
    let mut s = Section::new("S5b", "§5.2: FFT over B_d; polynomial convolution");
    for n in [8usize, 16, 64] {
        let xs: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.31).sin(), (i as f64 * 0.17).cos()))
            .collect();
        let fast = fft_via_butterfly(&xs);
        let slow = dft_naive(&xs);
        let err = fast
            .iter()
            .zip(&slow)
            .map(|(a, b)| (*a - *b).abs())
            .fold(0.0f64, f64::max);
        s.check(
            &format!(
                "FFT(B_{}) matches naive DFT, max err {err:.2e}",
                n.trailing_zeros()
            ),
            err < 1e-8,
        );
    }
    let a: Vec<f64> = (0..20).map(|i| ((i * 7 + 3) % 11) as f64 - 5.0).collect();
    let b: Vec<f64> = (0..15).map(|i| ((i * 5 + 1) % 13) as f64 - 6.0).collect();
    let fast = convolve_fft(&a, &b);
    let slow = convolve_naive(&a, &b);
    let err = fast
        .iter()
        .zip(&slow)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f64, f64::max);
    s.check(
        &format!("FFT convolution matches naive, max err {err:.2e}"),
        err < 1e-7,
    );
    s.line(
        "  (Criterion bench `apps::fft` sweeps n to show the Θ(n log n) vs Θ(n²) crossover.)"
            .to_string(),
    );
    s
}
