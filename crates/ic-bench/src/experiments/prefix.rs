//! Experiments F11, F12, F13, F15, F16: parallel-prefix computations
//! and their applications.

use ic_apps::dlt::{dlt_direct, dlt_via_prefix, dlt_via_vee3};
use ic_apps::graphpaths::{all_path_lengths_reference, nine_node_example};
use ic_apps::numeric::Complex;
use ic_apps::scan::{integer_powers, scan_sequential, scan_via_dag};
use ic_dag::Dag;
use ic_families::dlt::{dlt_prefix, dlt_vee3};
use ic_families::paths::graph_paths_dag;
use ic_families::prefix::{n_dag_sizes, parallel_prefix, prefix_as_n_chain, prefix_schedule};
use ic_sched::compose_schedule::{linear_composition_schedule, Stage};
use ic_sched::heuristics::{schedule_with, Policy};
use ic_sched::optimal::is_ic_optimal;
use ic_sched::priority::is_priority_chain;
use ic_sched::quality::{area_under, dominates};
use ic_sched::Schedule;

use crate::report::{fmt_profile, Section};

use super::Ctx;

/// Fig. 11: the 8-input parallel-prefix dag `P_8`.
pub fn fig11_parallel_prefix(ctx: &Ctx) -> Section {
    let mut s = Section::new("F11", "Fig. 11: the 8-input parallel-prefix dag P_8");
    let p8 = parallel_prefix(8);
    let sched = prefix_schedule(8);
    ctx.dot("fig11_p8", &p8, Some(&sched));
    s.check_eq(
        "P_8: (nodes, arcs)",
        (p8.num_nodes(), p8.num_arcs()),
        (32, 41),
    );
    s.check_eq(
        "(sources, sinks)",
        (p8.num_sources(), p8.num_sinks()),
        (8, 8),
    );
    s.check(
        "nonincreasing-N-dag schedule is valid",
        ic_dag::traversal::is_topological(&p8, sched.order()),
    );
    // Scan semantics: the dag computes prefixes.
    let xs: Vec<i64> = (1..=8).collect();
    s.check_eq(
        "P_8 computes prefix sums of 1..8",
        scan_via_dag(&xs, |a, b| a + b),
        scan_sequential(&xs, |a, b| a + b),
    );
    s.check_eq(
        "integer powers via P_6",
        integer_powers(2, 6),
        vec![2, 4, 8, 16, 32, 64],
    );
    s
}

/// Fig. 12: `P_n` as a composition of N-dags; the nonincreasing-order
/// schedule is IC-optimal.
pub fn fig12_n_dag_decomposition(ctx: &Ctx) -> Section {
    let mut s = Section::new("F12", "Fig. 12: P_n as N-dag composition");
    s.check_eq("P_8 stage sizes", n_dag_sizes(8), vec![8, 4, 4, 2, 2, 2, 2]);
    let (composite, maps, stages) = prefix_as_n_chain(8);
    ctx.dot("fig12_n_chain", &composite, None);
    let direct = parallel_prefix(8);
    s.check_eq(
        "N-chain reconstructs P_8 (nodes, arcs)",
        (composite.num_nodes(), composite.num_arcs()),
        (direct.num_nodes(), direct.num_arcs()),
    );
    let schedules: Vec<Schedule> = stages.iter().map(Schedule::in_id_order).collect();
    let pairs: Vec<(&Dag, &Schedule)> = stages.iter().zip(&schedules).collect();
    s.check("N_s ▷ N_t chain holds", is_priority_chain(&pairs));
    // Exhaustive optimality at P_4 (envelope is tractable there).
    let (c4, m4, s4dags) = prefix_as_n_chain(4);
    let s4scheds: Vec<Schedule> = s4dags.iter().map(Schedule::in_id_order).collect();
    let st: Vec<Stage<'_>> = s4dags
        .iter()
        .zip(&m4)
        .zip(&s4scheds)
        .map(|((dag, map), schedule)| Stage { dag, map, schedule })
        .collect();
    let sched4 = linear_composition_schedule(&c4, &st).unwrap();
    s.check(
        "Theorem 2.1 schedule on P_4 is IC-optimal",
        is_ic_optimal(&c4, &sched4).unwrap(),
    );
    s.check(
        "direct prefix_schedule(4) is IC-optimal",
        is_ic_optimal(&parallel_prefix(4), &prefix_schedule(4)).unwrap(),
    );
    // Theorem 2.1 over the full P_8 chain: schedule validity + dominance.
    let st8: Vec<Stage<'_>> = stages
        .iter()
        .zip(&maps)
        .zip(&schedules)
        .map(|((dag, map), schedule)| Stage { dag, map, schedule })
        .collect();
    let sched8 = linear_composition_schedule(&composite, &st8).unwrap();
    let opt8 = sched8.profile(&composite);
    s.line(format!("  P_8 schedule profile = {}", fmt_profile(&opt8)));
    for p in Policy::all(29) {
        let hp = schedule_with(&composite, &p).profile(&composite);
        s.line(format!(
            "  {:<10} area {:>4} (ours {:>4}) dominated: {}",
            p.name(),
            area_under(&hp),
            area_under(&opt8),
            dominates(&opt8, &hp)
        ));
    }
    s
}

/// Fig. 13: the DLT dag `L_8` and its coarsenings; DLT values check out.
pub fn fig13_dlt(ctx: &Ctx) -> Section {
    let mut s = Section::new("F13", "Fig. 13: the 8-input DLT dag L_8 (and coarsened)");
    let l8 = dlt_prefix(8);
    let sched8 = l8.ic_schedule().unwrap();
    ctx.dot("fig13_l8", &l8.dag, Some(&sched8));
    s.check_eq("L_8: nodes", l8.dag.num_nodes(), 39);
    s.check_eq(
        "(sources, sinks)",
        (l8.dag.num_sources(), l8.dag.num_sinks()),
        (8, 1),
    );
    s.check(
        "L_8 schedule is valid",
        ic_dag::traversal::is_topological(&l8.dag, sched8.order()),
    );
    let l4 = dlt_prefix(4);
    s.check(
        "L_4 schedule is IC-optimal (exhaustive)",
        is_ic_optimal(&l4.dag, &l4.ic_schedule().unwrap()).unwrap(),
    );
    // Coarsenings (Fig. 13 right).
    let q = l8.coarsen_leaf_pairs().unwrap();
    ctx.dot("fig13_l8_coarse", &q.dag, None);
    s.check_eq(
        "leaf-pair coarsening of L_8: nodes",
        q.dag.num_nodes(),
        39 - 8,
    );
    let q4 = l4.coarsen_leaf_pairs().unwrap();
    s.check(
        "coarsened L_4 admits an IC-optimal schedule",
        ic_sched::optimal::admits_ic_optimal(&q4.dag).unwrap(),
    );
    let qr = l4.coarsen_right_half().unwrap();
    s.check(
        "right-half coarsening of L_4 admits an IC-optimal schedule",
        ic_sched::optimal::admits_ic_optimal(&qr.dag).unwrap(),
    );
    // Value check: DLT by (6.4).
    let xs: Vec<Complex> = (0..8)
        .map(|i| Complex::new(1.0 / (i as f64 + 1.0), (i as f64 * 0.2).sin()))
        .collect();
    let omega = Complex::cis(0.41);
    let max_err = (0..8)
        .map(|k| (dlt_via_prefix(&xs, omega, k) - dlt_direct(&xs, omega, k)).abs())
        .fold(0.0f64, f64::max);
    s.check(
        &format!("DLT values match (6.4), max err {max_err:.2e}"),
        max_err < 1e-9,
    );
    s
}

/// Fig. 15: the alternative DLT dag `L'_8` via the ternary out-tree.
pub fn fig15_dlt_ternary(ctx: &Ctx) -> Section {
    let mut s = Section::new("F15", "Fig. 15: the alternative 8-input DLT dag L'_8");
    let lp8 = dlt_vee3(8);
    let sched = lp8.ic_schedule().unwrap();
    ctx.dot("fig15_lp8", &lp8.dag, Some(&sched));
    s.check_eq("L'_8: nodes", lp8.dag.num_nodes(), 18);
    s.check_eq(
        "(sources, sinks) — tree root plus the free x₀ source",
        (lp8.dag.num_sources(), lp8.dag.num_sinks()),
        (2, 1),
    );
    s.check(
        "L'_8 schedule is valid",
        ic_dag::traversal::is_topological(&lp8.dag, sched.order()),
    );
    let lp4 = dlt_vee3(4);
    s.check(
        "L'_4 schedule is IC-optimal (exhaustive)",
        is_ic_optimal(&lp4.dag, &lp4.ic_schedule().unwrap()).unwrap(),
    );
    // The two DLT algorithms agree.
    let xs: Vec<Complex> = (0..8).map(|i| Complex::new(i as f64 - 3.0, 0.5)).collect();
    let omega = Complex::cis(-0.73);
    let max_err = (0..8)
        .map(|k| (dlt_via_vee3(&xs, omega, k) - dlt_via_prefix(&xs, omega, k)).abs())
        .fold(0.0f64, f64::max);
    s.check(
        &format!("L'_8 and L_8 algorithms agree, max err {max_err:.2e}"),
        max_err < 1e-8,
    );
    s
}

/// Fig. 16: computing the paths in a 9-node graph.
pub fn fig16_graph_paths(ctx: &Ctx) -> Section {
    let mut s = Section::new("F16", "Fig. 16: path lengths in a 9-node graph");
    let dag = graph_paths_dag(8);
    let sched = dag.ic_schedule().unwrap();
    ctx.dot("fig16_paths", &dag.dag, Some(&sched));
    s.check_eq(
        "dag shape equals L_8 (matrix-granular tasks)",
        dag.dag.num_nodes(),
        39,
    );
    s.check(
        "schedule is valid",
        ic_dag::traversal::is_topological(&dag.dag, sched.order()),
    );
    let (a, m) = nine_node_example();
    let reference = all_path_lengths_reference(&a, 8);
    s.check("matrix M matches the layered-DP reference", m == reference);
    // A few human-readable rows of M.
    s.line("  M entries for node pairs (corner 0, center 4, corner 8), k = 1..8:".to_string());
    for (i, j) in [(0usize, 4usize), (0, 8), (4, 8)] {
        let bits: String = (1..=8)
            .map(|k| if m.has_path(i, j, k) { '1' } else { '0' })
            .collect();
        s.line(format!("    ({i},{j}): {bits}"));
    }
    s.check("grid parity: no odd-length corner-to-corner walks", {
        (1..=8).step_by(2).all(|k| !m.has_path(0, 8, k))
    });
    s
}
