//! A minimal `std::time` micro-benchmark harness.
//!
//! The offline build cannot resolve `criterion`, so the `benches/`
//! targets (which keep `harness = false`) drive their measurements
//! through this module instead. The protocol per benchmark is the
//! classic one: run the closure once to estimate its cost, pick an
//! iteration count that fills a small time budget, run a few batches,
//! and report the best (minimum) and mean per-iteration time. Results
//! go to stdout as aligned text, and optionally to a machine-readable
//! JSON file for regression tracking (see `IC_BENCH_JSON` below and
//! the `bench-check` validator binary).
//!
//! Environment knobs:
//!
//! * `IC_BENCH_MS` — per-benchmark time budget in milliseconds
//!   (default 40; raise for more stable numbers);
//! * `IC_BENCH_FILTER` — substring filter on `group/id` names, like
//!   `cargo bench <filter>` (the bench mains also pass their first CLI
//!   argument here);
//! * `IC_BENCH_JSON` — when set, [`Runner::finish`] writes every
//!   result to this path as a single JSON document:
//!
//!   ```json
//!   {"schema": "ic-bench/1", "budget_ms": 40, "results": [
//!     {"group": "envelope", "id": "mesh_55", "nodes": 55, "states": null,
//!      "best_ns": 1200, "mean_ns": 1900, "iters": 4096}, ...]}
//!   ```
//!
//!   `nodes` is the benchmarked dag's node count and `states` the
//!   per-run work-unit count of a throughput benchmark (both `null`
//!   for benchmarks without one). Times are per-iteration
//!   nanoseconds.
//! * `IC_BENCH_APPEND` — when set (and not `0`), merge into an
//!   existing `IC_BENCH_JSON` report instead of overwriting it, so
//!   several bench binaries can share one file.

use std::hint::black_box;
use std::time::{Duration, Instant};

use ic_sim::json::json_string;

/// One measured benchmark, as serialized into the JSON report.
struct Record {
    group: String,
    id: String,
    nodes: Option<usize>,
    /// Work-unit count for throughput benchmarks (e.g. model-checker
    /// states explored per run); `None` for plain timing records.
    states: Option<u64>,
    best_ns: u128,
    mean_ns: u128,
    iters: u64,
}

impl Record {
    fn to_json(&self) -> String {
        let nodes = self
            .nodes
            .map_or_else(|| "null".to_string(), |n| n.to_string());
        let states = self
            .states
            .map_or_else(|| "null".to_string(), |s| s.to_string());
        format!(
            "{{\"group\": {}, \"id\": {}, \"nodes\": {}, \"states\": {}, \"best_ns\": {}, \"mean_ns\": {}, \"iters\": {}}}",
            json_string(&self.group),
            json_string(&self.id),
            nodes,
            states,
            self.best_ns,
            self.mean_ns,
            self.iters,
        )
    }
}

/// Runs and reports benchmarks; construct once per bench binary.
pub struct Runner {
    budget: Duration,
    filter: Option<String>,
    json_path: Option<String>,
    records: Vec<Record>,
}

impl Runner {
    /// A runner configured from the environment and CLI arguments (the
    /// first non-flag argument, if any, becomes the name filter).
    pub fn from_env() -> Self {
        let ms = std::env::var("IC_BENCH_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(40);
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .or_else(|| std::env::var("IC_BENCH_FILTER").ok());
        let json_path = std::env::var("IC_BENCH_JSON")
            .ok()
            .filter(|p| !p.is_empty());
        Runner {
            budget: Duration::from_millis(ms.max(1)),
            filter,
            json_path,
            records: Vec::new(),
        }
    }

    /// Measure `f`, reporting under `group/id`. The closure's result is
    /// passed through [`black_box`] so the work cannot be optimized
    /// away.
    pub fn bench<R>(&mut self, group: &str, id: &str, f: impl FnMut() -> R) {
        self.bench_impl(group, id, None, None, f);
    }

    /// [`Runner::bench`] with the benchmarked dag's node count attached
    /// to the JSON record (for per-node cost comparisons downstream).
    pub fn bench_n<R>(&mut self, group: &str, id: &str, nodes: usize, f: impl FnMut() -> R) {
        self.bench_impl(group, id, Some(nodes), None, f);
    }

    /// [`Runner::bench_n`] with a per-run work-unit count attached (for
    /// throughput benchmarks: `bench-check` reports `states / best_ns`
    /// as a rate).
    pub fn bench_states<R>(
        &mut self,
        group: &str,
        id: &str,
        nodes: usize,
        states: u64,
        f: impl FnMut() -> R,
    ) {
        self.bench_impl(group, id, Some(nodes), Some(states), f);
    }

    /// Record one externally measured run verbatim. Macro-benchmarks
    /// (like the `net` fleet harness, where a single run takes
    /// seconds and drives thousands of worker connections) measure
    /// themselves and report here instead of iterating a closure:
    /// `best`/`mean` carry whatever the caller measured — e.g. a p99
    /// and a mean latency — and `iters` the sample count behind them.
    /// The usual name filter applies.
    #[allow(clippy::too_many_arguments)] // mirrors the Record fields
    pub fn record_raw(
        &mut self,
        group: &str,
        id: &str,
        nodes: Option<usize>,
        states: Option<u64>,
        best: Duration,
        mean: Duration,
        iters: u64,
    ) {
        let name = format!("{group}/{id}");
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        println!(
            "{name:<48} best {:>12}  mean {:>12}  ({iters} sample(s), raw)",
            fmt_duration(best),
            fmt_duration(mean),
        );
        self.records.push(Record {
            group: group.to_string(),
            id: id.to_string(),
            nodes,
            states,
            best_ns: best.as_nanos(),
            mean_ns: mean.as_nanos(),
            iters: iters.max(1),
        });
    }

    fn bench_impl<R>(
        &mut self,
        group: &str,
        id: &str,
        nodes: Option<usize>,
        states: Option<u64>,
        mut f: impl FnMut() -> R,
    ) {
        let name = format!("{group}/{id}");
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        // Estimate the cost of one call (running it at least once also
        // warms caches and lazy initialization).
        let t0 = Instant::now();
        black_box(f());
        let estimate = t0.elapsed().max(Duration::from_nanos(1));

        // Pick iterations per batch so that ~5 batches fill the budget.
        let per_batch = (self.budget.as_nanos() / 5 / estimate.as_nanos()).clamp(1, 1 << 20) as u64;
        let mut best = Duration::MAX;
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        let started = Instant::now();
        while started.elapsed() < self.budget {
            let b0 = Instant::now();
            for _ in 0..per_batch {
                black_box(f());
            }
            let batch = b0.elapsed();
            best = best.min(batch / per_batch as u32);
            total += batch;
            iters += per_batch;
        }
        let mean = total / iters.max(1) as u32;
        println!(
            "{name:<48} best {:>12}  mean {:>12}  ({iters} iters)",
            fmt_duration(best),
            fmt_duration(mean),
        );
        self.records.push(Record {
            group: group.to_string(),
            id: id.to_string(),
            nodes,
            states,
            best_ns: best.as_nanos(),
            mean_ns: mean.as_nanos(),
            iters,
        });
    }

    /// Print a closing line (and warn when a filter matched nothing);
    /// when `IC_BENCH_JSON` is set, write the JSON report there.
    ///
    /// # Panics
    /// Panics if the JSON report cannot be written.
    pub fn finish(self) {
        if self.records.is_empty() {
            match &self.filter {
                Some(f) => println!("no benchmarks matched filter {f:?}"),
                None => println!("no benchmarks ran"),
            }
        } else {
            println!("{} benchmark(s) done", self.records.len());
        }
        if let Some(path) = &self.json_path {
            // `IC_BENCH_APPEND=1` merges into an existing report
            // instead of overwriting it: records from other bench
            // binaries are kept, records with the same group/id are
            // replaced. This is how the several `[[bench]]` targets
            // share one `BENCH.json`.
            let mut kept: Vec<Record> = Vec::new();
            if std::env::var("IC_BENCH_APPEND").is_ok_and(|v| !v.is_empty() && v != "0") {
                if let Ok(old) = std::fs::read_to_string(path) {
                    kept = parse_records(&old)
                        .into_iter()
                        .filter(|o| {
                            !self
                                .records
                                .iter()
                                .any(|r| r.group == o.group && r.id == o.id)
                        })
                        .collect();
                }
            }
            let body: Vec<String> = kept
                .iter()
                .chain(self.records.iter())
                .map(|r| format!("  {}", r.to_json()))
                .collect();
            let doc = format!(
                "{{\"schema\": \"ic-bench/1\", \"budget_ms\": {}, \"results\": [\n{}\n]}}\n",
                self.budget.as_millis(),
                body.join(",\n"),
            );
            std::fs::write(path, doc).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            println!("wrote {path}");
        }
    }
}

/// Parse the records of an existing report (for `IC_BENCH_APPEND`).
/// Malformed entries are dropped — the `bench-check` validator, not
/// this best-effort reader, is the gate on report shape.
fn parse_records(text: &str) -> Vec<Record> {
    use ic_sim::json::{parse, Json};
    let Ok(doc) = parse(text) else {
        return Vec::new();
    };
    let Some(results) = doc.get("results").and_then(Json::as_arr) else {
        return Vec::new();
    };
    results
        .iter()
        .filter_map(|rec| {
            Some(Record {
                group: rec.get("group")?.as_str()?.to_string(),
                id: rec.get("id")?.as_str()?.to_string(),
                nodes: rec
                    .get("nodes")
                    .and_then(Json::as_u64)
                    .and_then(|n| usize::try_from(n).ok()),
                states: rec.get("states").and_then(Json::as_u64),
                best_ns: u128::from(rec.get("best_ns")?.as_u64()?),
                mean_ns: u128::from(rec.get("mean_ns")?.as_u64()?),
                iters: rec.get("iters")?.as_u64()?,
            })
        })
        .collect()
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_scale() {
        assert_eq!(fmt_duration(Duration::from_nanos(5)), "5 ns");
        assert_eq!(fmt_duration(Duration::from_micros(5)), "5.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(5)), "5.00 s");
    }

    #[test]
    fn runner_counts_and_filters() {
        let mut r = Runner {
            budget: Duration::from_millis(1),
            filter: Some("match".into()),
            json_path: None,
            records: Vec::new(),
        };
        r.bench("group", "matching", || 1 + 1);
        r.bench("group", "skipped", || 1 + 1);
        assert_eq!(r.records.len(), 1);
    }

    #[test]
    fn records_round_trip_through_the_json_parser() {
        let mut r = Runner {
            budget: Duration::from_millis(1),
            filter: None,
            json_path: None,
            records: Vec::new(),
        };
        r.bench_n("g", "with \"quotes\"", 42, || 1 + 1);
        r.bench("g", "no_nodes", || 1 + 1);
        let body: Vec<String> = r.records.iter().map(Record::to_json).collect();
        let doc = format!(
            "{{\"schema\": \"ic-bench/1\", \"budget_ms\": 1, \"results\": [{}]}}",
            body.join(",")
        );
        let json = ic_sim::json::parse(&doc).expect("report parses");
        assert_eq!(
            json.get("schema").and_then(|s| s.as_str()),
            Some("ic-bench/1")
        );
        let results = json.get("results").and_then(|r| r.as_arr()).unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(
            results[0].get("id").and_then(|s| s.as_str()),
            Some("with \"quotes\"")
        );
        assert_eq!(results[0].get("nodes").and_then(|n| n.as_usize()), Some(42));
        assert_eq!(results[1].get("nodes"), Some(&ic_sim::json::Json::Null));
        assert!(results[0].get("iters").and_then(|n| n.as_u64()).unwrap() >= 1);
    }
}
