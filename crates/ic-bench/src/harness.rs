//! A minimal `std::time` micro-benchmark harness.
//!
//! The offline build cannot resolve `criterion`, so the `benches/`
//! targets (which keep `harness = false`) drive their measurements
//! through this module instead. The protocol per benchmark is the
//! classic one: run the closure once to estimate its cost, pick an
//! iteration count that fills a small time budget, run a few batches,
//! and report the best (minimum) and mean per-iteration time. Results
//! go to stdout as aligned text — no statistics machinery, no files.
//!
//! Environment knobs:
//!
//! * `IC_BENCH_MS` — per-benchmark time budget in milliseconds
//!   (default 40; raise for more stable numbers);
//! * `IC_BENCH_FILTER` — substring filter on `group/id` names, like
//!   `cargo bench <filter>` (the bench mains also pass their first CLI
//!   argument here).

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Runs and reports benchmarks; construct once per bench binary.
pub struct Runner {
    budget: Duration,
    filter: Option<String>,
    ran: usize,
}

impl Runner {
    /// A runner configured from the environment and CLI arguments (the
    /// first non-flag argument, if any, becomes the name filter).
    pub fn from_env() -> Self {
        let ms = std::env::var("IC_BENCH_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(40);
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .or_else(|| std::env::var("IC_BENCH_FILTER").ok());
        Runner {
            budget: Duration::from_millis(ms.max(1)),
            filter,
            ran: 0,
        }
    }

    /// Measure `f`, reporting under `group/id`. The closure's result is
    /// passed through [`black_box`] so the work cannot be optimized
    /// away.
    pub fn bench<R>(&mut self, group: &str, id: &str, mut f: impl FnMut() -> R) {
        let name = format!("{group}/{id}");
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        // Estimate the cost of one call (running it at least once also
        // warms caches and lazy initialization).
        let t0 = Instant::now();
        black_box(f());
        let estimate = t0.elapsed().max(Duration::from_nanos(1));

        // Pick iterations per batch so that ~5 batches fill the budget.
        let per_batch = (self.budget.as_nanos() / 5 / estimate.as_nanos()).clamp(1, 1 << 20) as u64;
        let mut best = Duration::MAX;
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        let started = Instant::now();
        while started.elapsed() < self.budget {
            let b0 = Instant::now();
            for _ in 0..per_batch {
                black_box(f());
            }
            let batch = b0.elapsed();
            best = best.min(batch / per_batch as u32);
            total += batch;
            iters += per_batch;
        }
        let mean = total / iters.max(1) as u32;
        println!(
            "{name:<48} best {:>12}  mean {:>12}  ({iters} iters)",
            fmt_duration(best),
            fmt_duration(mean),
        );
        self.ran += 1;
    }

    /// Print a closing line (and warn when a filter matched nothing).
    pub fn finish(self) {
        if self.ran == 0 {
            match self.filter {
                Some(f) => println!("no benchmarks matched filter {f:?}"),
                None => println!("no benchmarks ran"),
            }
        } else {
            println!("{} benchmark(s) done", self.ran);
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_scale() {
        assert_eq!(fmt_duration(Duration::from_nanos(5)), "5 ns");
        assert_eq!(fmt_duration(Duration::from_micros(5)), "5.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(5)), "5.00 s");
    }

    #[test]
    fn runner_counts_and_filters() {
        let mut r = Runner {
            budget: Duration::from_millis(1),
            filter: Some("match".into()),
            ran: 0,
        };
        r.bench("group", "matching", || 1 + 1);
        r.bench("group", "skipped", || 1 + 1);
        assert_eq!(r.ran, 1);
    }
}
