//! # `ic-bench` — the experiment harness
//!
//! Regenerates every artifact of the paper's exposition — each of
//! Figures 1–17, Table 1, and the §5.2/§6.2 computations — as a
//! machine-checked experiment: construct the dag family, run the
//! paper's schedule, compare its eligibility profile against the
//! exhaustive optimal envelope (at checkable sizes) and against the
//! heuristic baselines, and emit a PASS/FAIL verdict plus the series
//! the paper's claims predict.
//!
//! Run everything:
//!
//! ```text
//! cargo run -p ic-bench --bin experiments
//! ```
//!
//! or one artifact: `cargo run -p ic-bench --bin experiments -- F13`.
//! Pass `--dot <dir>` to also write Graphviz renderings of every
//! constructed figure.
//!
//! Micro-benchmarks live under `benches/`, driven by the dependency-free
//! [`harness`] module (`cargo bench -p ic-bench`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod harness;
pub mod report;
