//! `bench-check` — validator for the machine-readable bench report.
//!
//! Reads a `BENCH.json` written by the harness (`IC_BENCH_JSON`),
//! verifies it structurally — correct schema tag, well-formed records,
//! every required bench group present — and prints a speedup table for
//! ids measured under both `envelope` and `envelope-naive`. Exits
//! nonzero on any violation, so `scripts/verify.sh` can gate on it.
//!
//! Usage: `bench-check <path> [required-group ...]`
//! (path defaults to `$IC_BENCH_JSON`; groups default to
//! `envelope envelope-naive exec-state`).

use std::process::ExitCode;

use ic_sim::json::{parse, Json};

/// One validated record of the report.
struct Row {
    group: String,
    id: String,
    states: Option<u64>,
    best: u64,
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("bench-check: {msg}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let path = match args.next().or_else(|| std::env::var("IC_BENCH_JSON").ok()) {
        Some(p) => p,
        None => return fail("no report path (pass one or set IC_BENCH_JSON)"),
    };
    let required: Vec<String> = {
        let rest: Vec<String> = args.collect();
        if rest.is_empty() {
            ["envelope", "envelope-naive", "exec-state"]
                .map(String::from)
                .to_vec()
        } else {
            rest
        }
    };

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => return fail(&format!("cannot read {path}: {e}")),
    };
    let doc = match parse(&text) {
        Ok(d) => d,
        Err(e) => return fail(&format!("{path} is not valid JSON: {e}")),
    };

    if doc.get("schema").and_then(Json::as_str) != Some("ic-bench/1") {
        return fail(&format!("{path}: missing or wrong \"schema\" tag"));
    }
    if doc.get("budget_ms").and_then(Json::as_u64).is_none() {
        return fail(&format!("{path}: missing numeric \"budget_ms\""));
    }
    let Some(results) = doc.get("results").and_then(Json::as_arr) else {
        return fail(&format!("{path}: missing \"results\" array"));
    };
    if results.is_empty() {
        return fail(&format!("{path}: empty \"results\" array"));
    }

    let mut rows: Vec<Row> = Vec::new();
    for (i, rec) in results.iter().enumerate() {
        let Some(group) = rec.get("group").and_then(Json::as_str) else {
            return fail(&format!("{path}: results[{i}] has no string \"group\""));
        };
        let Some(id) = rec.get("id").and_then(Json::as_str) else {
            return fail(&format!("{path}: results[{i}] has no string \"id\""));
        };
        match rec.get("nodes") {
            Some(Json::Null) => {}
            Some(v) if v.as_u64().is_some() => {}
            Some(_) => {
                return fail(&format!("{path}: results[{i}] has malformed \"nodes\""));
            }
            None => return fail(&format!("{path}: results[{i}] has no \"nodes\" field")),
        }
        // Optional (older reports predate it): per-run work-unit count
        // for throughput benchmarks. Present but mistyped is an error.
        let states = match rec.get("states") {
            None | Some(Json::Null) => None,
            Some(v) => match v.as_u64() {
                Some(s) => Some(s),
                None => {
                    return fail(&format!("{path}: results[{i}] has malformed \"states\""));
                }
            },
        };
        let Some(best) = rec.get("best_ns").and_then(Json::as_u64) else {
            return fail(&format!("{path}: results[{i}] has no numeric \"best_ns\""));
        };
        if rec.get("mean_ns").and_then(Json::as_u64).is_none() {
            return fail(&format!("{path}: results[{i}] has no numeric \"mean_ns\""));
        }
        match rec.get("iters").and_then(Json::as_u64) {
            Some(it) if it >= 1 => {}
            _ => return fail(&format!("{path}: results[{i}] has no positive \"iters\"")),
        }
        rows.push(Row {
            group: group.to_string(),
            id: id.to_string(),
            states,
            best,
        });
    }

    for group in &required {
        if !rows.iter().any(|r| &r.group == group) {
            return fail(&format!("{path}: required bench group {group:?} is absent"));
        }
    }

    // Informational speedup table: ids present under both the new and
    // the naive envelope walk.
    for row in &rows {
        if row.group != "envelope" {
            continue;
        }
        if let Some(naive) = rows
            .iter()
            .find(|r| r.group == "envelope-naive" && r.id == row.id)
        {
            let speedup = naive.best as f64 / row.best.max(1) as f64;
            println!("envelope/{:<24} {speedup:>6.2}x vs naive", row.id);
        }
    }

    // Informational throughput table: any record carrying a work-unit
    // count reports its rate (e.g. model-checker states per second).
    for row in &rows {
        if let Some(s) = row.states {
            let rate = s as f64 * 1e9 / row.best.max(1) as f64;
            println!(
                "{}/{:<24} {s:>8} states, {rate:>12.0} states/s",
                row.group, row.id
            );
        }
    }

    println!(
        "bench-check: {path} OK ({} records, groups: {})",
        rows.len(),
        required.join(", ")
    );
    ExitCode::SUCCESS
}
