//! Regenerate every figure/table artifact of the paper.
//!
//! ```text
//! cargo run -p ic-bench --bin experiments            # everything
//! cargo run -p ic-bench --bin experiments -- F13 F17 # a subset
//! cargo run -p ic-bench --bin experiments -- --dot out/figures
//! ```
//!
//! Exits nonzero if any experiment's checks fail.

use std::io::Write as _;
use std::path::PathBuf;

use ic_bench::experiments::{run_all, Ctx};

fn main() {
    let mut only: Vec<String> = Vec::new();
    let mut ctx = Ctx::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--dot" => {
                let dir = args.next().unwrap_or_else(|| {
                    eprintln!("--dot requires a directory argument");
                    std::process::exit(2);
                });
                ctx.dot_dir = Some(PathBuf::from(dir));
            }
            "--help" | "-h" => {
                println!("usage: experiments [--dot DIR] [ARTIFACT_ID ...]");
                println!("artifact ids: F1-F17, T1, S5a, S5b, SIM");
                return;
            }
            other => only.push(other.to_string()),
        }
    }

    let sections = run_all(&ctx, &only);
    if sections.is_empty() {
        eprintln!("no experiments matched {only:?}");
        std::process::exit(2);
    }

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let _ = writeln!(
        out,
        "IC-Scheduling Theory — experiment harness ({} artifacts)\n",
        sections.len()
    );
    let mut failures = 0usize;
    for sec in &sections {
        let _ = write!(out, "{}", sec.render());
        let _ = writeln!(out);
        if !sec.pass {
            failures += 1;
        }
    }
    let _ = writeln!(
        out,
        "summary: {}/{} artifacts reproduced{}",
        sections.len() - failures,
        sections.len(),
        if failures == 0 {
            ""
        } else {
            " — FAILURES PRESENT"
        }
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
