//! Simulation metrics — derived from the execution trace.
//!
//! Every metric in [`SimResult`] is a fold over the run's
//! [`TraceEvent`] stream ([`MetricsFold`]): the simulator feeds events
//! through the fold as it emits them, and [`SimResult::from_trace`]
//! recomputes the same numbers from a captured [`Trace`]. One source of
//! truth: what the auditor replays is exactly what the reports count.

use crate::trace::{Trace, TraceEvent};

/// The outcome of one simulated execution.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Wall-clock time at which the last task completed.
    pub makespan: f64,
    /// Requests that found the ELIGIBLE pool empty while allocated work
    /// was still outstanding (the paper's gridlock scenario (1)).
    pub gridlock_events: usize,
    /// Of the initial batch of simultaneous requests, how many could
    /// *not* be served immediately (scenario (2)).
    pub unsatisfied_at_batch: usize,
    /// Total time clients spent waiting for work (excluding the tail
    /// after the computation ends).
    pub idle_time: f64,
    /// Number of task allocations (== completions when no failures).
    pub allocations: usize,
    /// Number of completed tasks.
    pub completions: usize,
    /// Number of failed allocations (lost work that was re-queued).
    pub failures: usize,
    /// Aggregate client busy fraction: busy-time / (clients × makespan).
    pub utilization: f64,
    /// `(time, pool size)` samples: the ELIGIBLE-pool trajectory.
    pub eligible_trace: Vec<(f64, usize)>,
}

impl SimResult {
    pub(crate) fn new(_clients: usize) -> Self {
        SimResult {
            makespan: 0.0,
            gridlock_events: 0,
            unsatisfied_at_batch: 0,
            idle_time: 0.0,
            allocations: 0,
            completions: 0,
            failures: 0,
            utilization: 0.0,
            eligible_trace: Vec::new(),
        }
    }

    pub(crate) fn record_pool(&mut self, t: f64, size: usize) {
        self.eligible_trace.push((t, size));
    }

    pub(crate) fn finalize(&mut self, clients: usize, _tasks: usize) {
        if self.makespan > 0.0 {
            let capacity = clients as f64 * self.makespan;
            self.utilization = (capacity - self.idle_time).max(0.0) / capacity;
        }
    }

    /// The fraction of wall-clock time during which a burst of `batch`
    /// simultaneous requests could all be served from the ELIGIBLE pool
    /// (time-weighted over the trace) — the paper's §2.2 scenario (2),
    /// quantified.
    pub fn batch_service_fraction(&self, batch: usize) -> f64 {
        if self.eligible_trace.len() < 2 {
            return if self
                .eligible_trace
                .first()
                .is_some_and(|&(_, s)| s >= batch)
            {
                1.0
            } else {
                0.0
            };
        }
        let mut good = 0.0;
        let mut total = 0.0;
        for w in self.eligible_trace.windows(2) {
            let (t0, s0) = w[0];
            let (t1, _) = w[1];
            let dt = t1 - t0;
            total += dt;
            if s0 >= batch {
                good += dt;
            }
        }
        if total > 0.0 {
            good / total
        } else {
            0.0
        }
    }

    /// Recompute the metrics of a captured trace — the same fold the
    /// simulator applies while emitting events, so this agrees exactly
    /// with the `SimResult` the original run returned.
    ///
    /// Executor traces (which do not track the pool) yield a degenerate
    /// `eligible_trace` of the initial sample only.
    pub fn from_trace(trace: &Trace) -> SimResult {
        let n = trace.header.nodes;
        let mut has_parent = vec![false; n];
        for &(_, v) in &trace.header.arcs {
            if (v as usize) < n {
                has_parent[v as usize] = true;
            }
        }
        let num_sources = has_parent.iter().filter(|&&p| !p).count();
        let mut fold = MetricsFold::new(n, num_sources, trace.header.clients);
        for ev in &trace.events {
            fold.apply(ev);
        }
        fold.finish()
    }

    /// Mean ELIGIBLE-pool size over the recorded trace (time-weighted).
    pub fn mean_pool(&self) -> f64 {
        if self.eligible_trace.len() < 2 {
            return self.eligible_trace.first().map_or(0.0, |&(_, s)| s as f64);
        }
        let mut area = 0.0;
        for w in self.eligible_trace.windows(2) {
            let (t0, s0) = w[0];
            let (t1, _) = w[1];
            area += (t1 - t0) * s0 as f64;
        }
        let span = match (self.eligible_trace.last(), self.eligible_trace.first()) {
            (Some(&(end, _)), Some(&(startt, _))) => end - startt,
            _ => return 0.0,
        };
        if span > 0.0 {
            area / span
        } else {
            0.0
        }
    }
}

/// The incremental fold from trace events to a [`SimResult`].
///
/// The fold reproduces the pre-trace metric definitions exactly:
///
/// * `eligible_trace` starts at `(0, #sources)` and gains one sample
///   per completion/failure (the pool after newly enabled tasks joined
///   or the lost task re-entered, before re-allocation);
/// * an [`TraceEvent::Idle`] among the first `clients` events is an
///   initial-batch shortfall;
/// * an idle request while allocated work is outstanding (and the
///   computation unfinished) is a gridlock event;
/// * `idle_time` accrues per client from its previous
///   completion/failure (or time 0) to its next allocation, which
///   excludes the tail after the computation ends.
pub(crate) struct MetricsFold {
    res: SimResult,
    n: usize,
    clients: usize,
    /// Per client: the time of its most recent work request.
    request_time: Vec<f64>,
    events_seen: usize,
    last_time: f64,
}

impl MetricsFold {
    pub(crate) fn new(n: usize, num_sources: usize, clients: usize) -> MetricsFold {
        let mut res = SimResult::new(clients);
        res.record_pool(0.0, num_sources);
        MetricsFold {
            res,
            n,
            clients,
            request_time: vec![0.0; clients],
            events_seen: 0,
            last_time: 0.0,
        }
    }

    pub(crate) fn apply(&mut self, ev: &TraceEvent) {
        self.last_time = self.last_time.max(ev.time());
        match *ev {
            TraceEvent::Allocated { time, client, .. } => {
                self.res.allocations += 1;
                if client < self.clients {
                    self.res.idle_time += time - self.request_time[client];
                }
            }
            TraceEvent::Completed {
                time, client, pool, ..
            } => {
                self.res.completions += 1;
                if client < self.clients {
                    self.request_time[client] = time;
                }
                if let Some(p) = pool {
                    self.res.record_pool(time, p);
                }
            }
            TraceEvent::Failed {
                time, client, pool, ..
            } => {
                self.res.failures += 1;
                if client < self.clients {
                    self.request_time[client] = time;
                }
                if let Some(p) = pool {
                    self.res.record_pool(time, p);
                }
            }
            TraceEvent::Idle { .. } => {
                let outstanding = self
                    .res
                    .allocations
                    .saturating_sub(self.res.completions + self.res.failures);
                if outstanding > 0 && self.res.completions < self.n {
                    self.res.gridlock_events += 1;
                }
                if self.events_seen < self.clients {
                    self.res.unsatisfied_at_batch += 1;
                }
            }
            // v3 lease-lifecycle events from the networked server. A
            // resume changes no metric (the original allocation is
            // still open); a speculative duplicate lease occupies its
            // client like an allocation; a revoke frees the client
            // without being a completion or failure.
            TraceEvent::Resumed { .. } => {}
            TraceEvent::Speculated { time, client, .. } => {
                if client < self.clients {
                    self.res.idle_time += time - self.request_time[client];
                }
            }
            TraceEvent::Revoked { time, client, .. } => {
                if client < self.clients {
                    self.request_time[client] = time;
                }
            }
        }
        self.events_seen += 1;
    }

    pub(crate) fn finish(mut self) -> SimResult {
        self.res.makespan = self.last_time;
        self.res.finalize(self.clients, self.n);
        self.res
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_pool_time_weighted() {
        let mut r = SimResult::new(1);
        r.record_pool(0.0, 2);
        r.record_pool(1.0, 4);
        r.record_pool(3.0, 0);
        // 1s at 2, 2s at 4 => (2 + 8) / 3.
        assert!((r.mean_pool() - 10.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn batch_service_fraction_time_weighted() {
        let mut r = SimResult::new(1);
        r.record_pool(0.0, 1);
        r.record_pool(1.0, 3);
        r.record_pool(3.0, 0);
        // Pool >= 2 during [1, 3): 2 of 3 time units.
        assert!((r.batch_service_fraction(2) - 2.0 / 3.0).abs() < 1e-12);
        assert!((r.batch_service_fraction(1) - 1.0).abs() < 1e-12);
        assert_eq!(r.batch_service_fraction(4), 0.0);
    }

    #[test]
    fn batch_service_fraction_degenerate() {
        let mut r = SimResult::new(1);
        assert_eq!(r.batch_service_fraction(1), 0.0);
        r.record_pool(0.0, 5);
        assert_eq!(r.batch_service_fraction(3), 1.0);
        assert_eq!(r.batch_service_fraction(9), 0.0);
    }

    #[test]
    fn mean_pool_degenerate() {
        let mut r = SimResult::new(1);
        assert_eq!(r.mean_pool(), 0.0);
        r.record_pool(0.0, 5);
        assert_eq!(r.mean_pool(), 5.0);
    }

    #[test]
    fn utilization_formula() {
        let mut r = SimResult::new(2);
        r.makespan = 10.0;
        r.idle_time = 5.0;
        r.finalize(2, 100);
        assert!((r.utilization - 0.75).abs() < 1e-12);
    }
}
