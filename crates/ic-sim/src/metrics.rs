//! Simulation metrics.

/// The outcome of one simulated execution.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Wall-clock time at which the last task completed.
    pub makespan: f64,
    /// Requests that found the ELIGIBLE pool empty while allocated work
    /// was still outstanding (the paper's gridlock scenario (1)).
    pub gridlock_events: usize,
    /// Of the initial batch of simultaneous requests, how many could
    /// *not* be served immediately (scenario (2)).
    pub unsatisfied_at_batch: usize,
    /// Total time clients spent waiting for work (excluding the tail
    /// after the computation ends).
    pub idle_time: f64,
    /// Number of task allocations (== completions when no failures).
    pub allocations: usize,
    /// Number of completed tasks.
    pub completions: usize,
    /// Number of failed allocations (lost work that was re-queued).
    pub failures: usize,
    /// Aggregate client busy fraction: busy-time / (clients × makespan).
    pub utilization: f64,
    /// `(time, pool size)` samples: the ELIGIBLE-pool trajectory.
    pub eligible_trace: Vec<(f64, usize)>,
}

impl SimResult {
    pub(crate) fn new(_clients: usize) -> Self {
        SimResult {
            makespan: 0.0,
            gridlock_events: 0,
            unsatisfied_at_batch: 0,
            idle_time: 0.0,
            allocations: 0,
            completions: 0,
            failures: 0,
            utilization: 0.0,
            eligible_trace: Vec::new(),
        }
    }

    pub(crate) fn record_pool(&mut self, t: f64, size: usize) {
        self.eligible_trace.push((t, size));
    }

    pub(crate) fn finalize(&mut self, clients: usize, _tasks: usize) {
        if self.makespan > 0.0 {
            let capacity = clients as f64 * self.makespan;
            self.utilization = (capacity - self.idle_time).max(0.0) / capacity;
        }
    }

    /// The fraction of wall-clock time during which a burst of `batch`
    /// simultaneous requests could all be served from the ELIGIBLE pool
    /// (time-weighted over the trace) — the paper's §2.2 scenario (2),
    /// quantified.
    pub fn batch_service_fraction(&self, batch: usize) -> f64 {
        if self.eligible_trace.len() < 2 {
            return if self
                .eligible_trace
                .first()
                .is_some_and(|&(_, s)| s >= batch)
            {
                1.0
            } else {
                0.0
            };
        }
        let mut good = 0.0;
        let mut total = 0.0;
        for w in self.eligible_trace.windows(2) {
            let (t0, s0) = w[0];
            let (t1, _) = w[1];
            let dt = t1 - t0;
            total += dt;
            if s0 >= batch {
                good += dt;
            }
        }
        if total > 0.0 {
            good / total
        } else {
            0.0
        }
    }

    /// Mean ELIGIBLE-pool size over the recorded trace (time-weighted).
    pub fn mean_pool(&self) -> f64 {
        if self.eligible_trace.len() < 2 {
            return self.eligible_trace.first().map_or(0.0, |&(_, s)| s as f64);
        }
        let mut area = 0.0;
        for w in self.eligible_trace.windows(2) {
            let (t0, s0) = w[0];
            let (t1, _) = w[1];
            area += (t1 - t0) * s0 as f64;
        }
        let span = self.eligible_trace.last().unwrap().0 - self.eligible_trace[0].0;
        if span > 0.0 {
            area / span
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_pool_time_weighted() {
        let mut r = SimResult::new(1);
        r.record_pool(0.0, 2);
        r.record_pool(1.0, 4);
        r.record_pool(3.0, 0);
        // 1s at 2, 2s at 4 => (2 + 8) / 3.
        assert!((r.mean_pool() - 10.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn batch_service_fraction_time_weighted() {
        let mut r = SimResult::new(1);
        r.record_pool(0.0, 1);
        r.record_pool(1.0, 3);
        r.record_pool(3.0, 0);
        // Pool >= 2 during [1, 3): 2 of 3 time units.
        assert!((r.batch_service_fraction(2) - 2.0 / 3.0).abs() < 1e-12);
        assert!((r.batch_service_fraction(1) - 1.0).abs() < 1e-12);
        assert_eq!(r.batch_service_fraction(4), 0.0);
    }

    #[test]
    fn batch_service_fraction_degenerate() {
        let mut r = SimResult::new(1);
        assert_eq!(r.batch_service_fraction(1), 0.0);
        r.record_pool(0.0, 5);
        assert_eq!(r.batch_service_fraction(3), 1.0);
        assert_eq!(r.batch_service_fraction(9), 0.0);
    }

    #[test]
    fn mean_pool_degenerate() {
        let mut r = SimResult::new(1);
        assert_eq!(r.mean_pool(), 0.0);
        r.record_pool(0.0, 5);
        assert_eq!(r.mean_pool(), 5.0);
    }

    #[test]
    fn utilization_formula() {
        let mut r = SimResult::new(2);
        r.makespan = 10.0;
        r.idle_time = 5.0;
        r.finalize(2, 100);
        assert!((r.utilization - 0.75).abs() < 1e-12);
    }
}
