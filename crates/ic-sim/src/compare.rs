//! Multi-seed policy comparison — the summary the experiment harness
//! and the examples both report.

use ic_dag::Dag;
use ic_sched::AllocationPolicy;

use crate::server::{simulate, SimConfig};

/// Seed-averaged metrics for one allocation policy.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicySummary {
    /// Display label.
    pub label: String,
    /// Mean gridlock events per run.
    pub gridlock: f64,
    /// Mean initial-batch shortfall.
    pub unsatisfied_at_batch: f64,
    /// Mean (time-weighted) ELIGIBLE-pool size.
    pub mean_pool: f64,
    /// Mean makespan.
    pub makespan: f64,
    /// Mean client utilization.
    pub utilization: f64,
    /// Mean client idle time.
    pub idle_time: f64,
    /// Mean failed allocations.
    pub failures: f64,
}

/// Run `policy` over every seed in `seeds` (varying only the RNG seed
/// of `base`) and average the metrics. Any [`AllocationPolicy`] works:
/// a precomputed `Schedule`, a baseline heuristic, or a dynamic policy.
///
/// # Panics
/// Panics if `seeds` is empty.
pub fn summarize_policy(
    label: impl Into<String>,
    dag: &Dag,
    policy: &dyn AllocationPolicy,
    base: &SimConfig,
    seeds: &[u64],
) -> PolicySummary {
    assert!(!seeds.is_empty(), "need at least one seed");
    let mut acc = PolicySummary {
        label: label.into(),
        gridlock: 0.0,
        unsatisfied_at_batch: 0.0,
        mean_pool: 0.0,
        makespan: 0.0,
        utilization: 0.0,
        idle_time: 0.0,
        failures: 0.0,
    };
    for &seed in seeds {
        let cfg = SimConfig {
            seed,
            ..base.clone()
        };
        let r = simulate(dag, policy, &cfg);
        acc.gridlock += r.gridlock_events as f64;
        acc.unsatisfied_at_batch += r.unsatisfied_at_batch as f64;
        acc.mean_pool += r.mean_pool();
        acc.makespan += r.makespan;
        acc.utilization += r.utilization;
        acc.idle_time += r.idle_time;
        acc.failures += r.failures as f64;
    }
    let k = seeds.len() as f64;
    acc.gridlock /= k;
    acc.unsatisfied_at_batch /= k;
    acc.mean_pool /= k;
    acc.makespan /= k;
    acc.utilization /= k;
    acc.idle_time /= k;
    acc.failures /= k;
    acc
}

/// Compare several labeled policies over the same seeds.
pub fn compare_policies(
    dag: &Dag,
    policies: &[(String, &dyn AllocationPolicy)],
    base: &SimConfig,
    seeds: &[u64],
) -> Vec<PolicySummary> {
    policies
        .iter()
        .map(|(label, policy)| summarize_policy(label.clone(), dag, *policy, base, seeds))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_dag::builder::from_arcs;
    use ic_sched::heuristics::Policy;
    use ic_sched::Schedule;

    #[test]
    fn averages_over_seeds() {
        let g = from_arcs(6, &[(0, 1), (0, 2), (1, 3), (2, 4), (3, 5), (4, 5)]).unwrap();
        let s = Schedule::in_id_order(&g);
        let base = SimConfig::default();
        let one = summarize_policy("x", &g, &s, &base, &[1]);
        let many = summarize_policy("x", &g, &s, &base, &[1, 2, 3, 4]);
        assert!(one.makespan > 0.0 && many.makespan > 0.0);
        // Averaging changes the value unless all runs coincide.
        assert_eq!(one.label, "x");
        assert!(many.utilization > 0.0 && many.utilization <= 1.0);
    }

    #[test]
    fn compares_multiple_policies() {
        let g = from_arcs(
            8,
            &[
                (0, 1),
                (0, 2),
                (1, 3),
                (2, 4),
                (3, 5),
                (4, 6),
                (5, 7),
                (6, 7),
            ],
        )
        .unwrap();
        let owned = Policy::all(3);
        let policies: Vec<(String, &dyn AllocationPolicy)> = owned
            .iter()
            .map(|p| (p.name().to_string(), p as &dyn AllocationPolicy))
            .collect();
        let rows = compare_policies(&g, &policies, &SimConfig::default(), &[5, 6]);
        assert_eq!(rows.len(), 6);
        assert!(rows.iter().all(|r| r.makespan > 0.0));
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn empty_seeds_panic() {
        let g = from_arcs(2, &[(0, 1)]).unwrap();
        let s = Schedule::in_id_order(&g);
        let _ = summarize_policy("x", &g, &s, &SimConfig::default(), &[]);
    }
}
