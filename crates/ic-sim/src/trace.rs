//! The shared execution-trace model.
//!
//! Every run of the discrete-event simulator ([`crate::simulate_traced`])
//! and of the `ic-exec` work-stealing executor can emit its event
//! history through a [`TraceSink`]: one [`TraceHeader`] carrying the
//! dag (so a trace file is self-contained), then a stream of
//! [`TraceEvent`]s — task allocated, task completed, allocation failed,
//! client idle — in the order the server processed them. Traces
//! serialize to line-oriented JSONL (one object per line, in the style
//! of `ic_dag::serialize`: deterministic, diffable, zero external
//! deps), and `ic-audit` replays them against the embedded dag to
//! verify that the *run* — not just a static order — respected
//! eligibility and tracked the optimal envelope.

use std::cell::Cell;
use std::fmt;
use std::io::{self, Write as _};
use std::path::Path;

use ic_dag::builder::from_arcs;
use ic_dag::error::DagError;
use ic_dag::{Dag, NodeId};
use ic_sched::policy::{AllocationPolicy, PolicyContext};

use crate::json::{self, Json};

/// Current trace-format version, written into every header. Version 2
/// added the optional per-client `workers` service parameters; version
/// 3 added the lease-lifecycle events of the networked server —
/// `resume` (a reconnecting worker kept its lease), `spec` (a
/// speculative duplicate lease at the drain barrier), and `revoke` (a
/// duplicate lease cancelled because another worker completed first).
/// Older traces still parse.
pub const TRACE_VERSION: u32 = 3;

/// Declared service parameters of one client, recorded in the trace
/// header so a replay can reproduce the run's *timing*, not just its
/// order: [`crate::SimConfig::for_replay`] rebuilds a client population
/// from these, and observed per-task service times are recoverable from
/// the event stream via [`Trace::observed_service_times`].
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerParams {
    /// The client slot this worker occupies (the `client` of its
    /// events).
    pub client: usize,
    /// Self-declared worker identity (`"client-N"` for simulated
    /// clients; whatever the remote worker announced for `ic-net`).
    pub id: String,
    /// Declared speed factor: the worker finishes compute in
    /// `1 / speed` of the base service time.
    pub speed: f64,
}

/// The first line of a trace: run parameters plus the dag itself.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceHeader {
    /// Trace-format version ([`TRACE_VERSION`]).
    pub version: u32,
    /// Number of dag nodes.
    pub nodes: usize,
    /// The dag's arcs as `(parent, child)` id pairs.
    pub arcs: Vec<(u32, u32)>,
    /// Number of simulated clients (workers, for executor traces).
    pub clients: usize,
    /// RNG seed of the run (0 for the real executor).
    pub seed: u64,
    /// Name of the allocation policy that drove the run.
    pub policy: String,
    /// Per-client declared service parameters, when the emitter knows
    /// them at run start (empty otherwise; version-1 traces parse as
    /// empty).
    pub workers: Vec<WorkerParams>,
}

impl TraceHeader {
    /// Build a header for a run of `dag`.
    pub fn for_run(dag: &Dag, clients: usize, seed: u64, policy: &str) -> TraceHeader {
        TraceHeader {
            version: TRACE_VERSION,
            nodes: dag.num_nodes(),
            arcs: dag.arcs().map(|(u, v)| (u.0, v.0)).collect(),
            clients,
            seed,
            policy: policy.to_string(),
            workers: Vec::new(),
        }
    }

    /// Attach per-client service parameters.
    pub fn with_workers(mut self, workers: Vec<WorkerParams>) -> TraceHeader {
        self.workers = workers;
        self
    }

    /// Serialize as the JSONL header line (newline included).
    pub fn to_json_line(&self) -> String {
        let arcs = self
            .arcs
            .iter()
            .map(|&(u, v)| format!("[{u},{v}]"))
            .collect::<Vec<_>>()
            .join(",");
        let mut line = format!(
            "{{\"type\":\"header\",\"version\":{},\"nodes\":{},\"clients\":{},\"seed\":\"{}\",\"policy\":{},\"arcs\":[{}]",
            self.version,
            self.nodes,
            self.clients,
            self.seed,
            json::json_string(&self.policy),
            arcs
        );
        if !self.workers.is_empty() {
            line.push_str(",\"workers\":[");
            for (i, w) in self.workers.iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                line.push_str(&format!(
                    "{{\"client\":{},\"id\":{},\"speed\":{}}}",
                    w.client,
                    json::json_string(&w.id),
                    w.speed
                ));
            }
            line.push(']');
        }
        line.push_str("}\n");
        line
    }
}

/// One step of an execution, with its logical timestamp.
///
/// `step` is the global event index (0-based, monotone); `time` is the
/// run's clock — simulated time units for `ic-sim`, elapsed seconds for
/// `ic-exec`. `pool` is the size of the ELIGIBLE-and-unallocated pool
/// *after* the event applied, when the emitter tracks it (`None` for
/// the real executor, whose pool is sharded across worker deques).
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// The server allocated `task` to `client`.
    Allocated {
        /// Global event index.
        step: u64,
        /// Event timestamp.
        time: f64,
        /// Receiving client.
        client: usize,
        /// Allocated task.
        task: NodeId,
        /// ELIGIBLE-pool size after the allocation, if tracked.
        pool: Option<usize>,
    },
    /// `client` returned a completed `task`.
    Completed {
        /// Global event index.
        step: u64,
        /// Event timestamp.
        time: f64,
        /// Reporting client.
        client: usize,
        /// Completed task.
        task: NodeId,
        /// ELIGIBLE-pool size after newly enabled tasks joined, if tracked.
        pool: Option<usize>,
    },
    /// `client` lost `task` (crash or bad result); the task returned to
    /// the ELIGIBLE pool.
    Failed {
        /// Global event index.
        step: u64,
        /// Event timestamp.
        time: f64,
        /// Failing client.
        client: usize,
        /// Lost task.
        task: NodeId,
        /// ELIGIBLE-pool size after the task re-entered, if tracked.
        pool: Option<usize>,
    },
    /// `client` requested work and none could be allocated — the
    /// paper's gridlock scenario when allocated work is outstanding.
    Idle {
        /// Global event index.
        step: u64,
        /// Event timestamp.
        time: f64,
        /// Unserved client.
        client: usize,
    },
    /// `client` reconnected (resume token) and kept its lease on
    /// `task`: the allocation stays open, nothing re-enters the pool.
    /// Emitted once per lease the resume restored (v3).
    Resumed {
        /// Global event index.
        step: u64,
        /// Event timestamp.
        time: f64,
        /// Reconnecting client.
        client: usize,
        /// The task whose lease survived the reconnect.
        task: NodeId,
    },
    /// `client` received a *speculative* duplicate lease on an
    /// in-flight `task` (drain-barrier work stealing). The task was
    /// already allocated, so the pool does not shrink (v3).
    Speculated {
        /// Global event index.
        step: u64,
        /// Event timestamp.
        time: f64,
        /// The idle client stealing the in-flight task.
        client: usize,
        /// The duplicated task.
        task: NodeId,
        /// ELIGIBLE-pool size after the event (unchanged by it), if
        /// tracked.
        pool: Option<usize>,
    },
    /// `client`'s duplicate lease on `task` was cancelled: another
    /// holder completed it first. Not a failure — the work was simply
    /// redundant (v3).
    Revoked {
        /// Global event index.
        step: u64,
        /// Event timestamp.
        time: f64,
        /// The client losing its duplicate lease.
        client: usize,
        /// The already-completed task.
        task: NodeId,
    },
}

impl TraceEvent {
    /// Global event index.
    pub fn step(&self) -> u64 {
        match *self {
            TraceEvent::Allocated { step, .. }
            | TraceEvent::Completed { step, .. }
            | TraceEvent::Failed { step, .. }
            | TraceEvent::Idle { step, .. }
            | TraceEvent::Resumed { step, .. }
            | TraceEvent::Speculated { step, .. }
            | TraceEvent::Revoked { step, .. } => step,
        }
    }

    /// Event timestamp.
    pub fn time(&self) -> f64 {
        match *self {
            TraceEvent::Allocated { time, .. }
            | TraceEvent::Completed { time, .. }
            | TraceEvent::Failed { time, .. }
            | TraceEvent::Idle { time, .. }
            | TraceEvent::Resumed { time, .. }
            | TraceEvent::Speculated { time, .. }
            | TraceEvent::Revoked { time, .. } => time,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Allocated { .. } => "alloc",
            TraceEvent::Completed { .. } => "complete",
            TraceEvent::Failed { .. } => "fail",
            TraceEvent::Idle { .. } => "idle",
            TraceEvent::Resumed { .. } => "resume",
            TraceEvent::Speculated { .. } => "spec",
            TraceEvent::Revoked { .. } => "revoke",
        }
    }

    /// Serialize as one JSONL event line (newline included).
    pub fn to_json_line(&self) -> String {
        let mut line = format!(
            "{{\"type\":\"{}\",\"step\":{},\"t\":{},\"client\":{}",
            self.kind(),
            self.step(),
            self.time(),
            match *self {
                TraceEvent::Allocated { client, .. }
                | TraceEvent::Completed { client, .. }
                | TraceEvent::Failed { client, .. }
                | TraceEvent::Idle { client, .. }
                | TraceEvent::Resumed { client, .. }
                | TraceEvent::Speculated { client, .. }
                | TraceEvent::Revoked { client, .. } => client,
            }
        );
        match *self {
            TraceEvent::Allocated { task, pool, .. }
            | TraceEvent::Completed { task, pool, .. }
            | TraceEvent::Failed { task, pool, .. }
            | TraceEvent::Speculated { task, pool, .. } => {
                line.push_str(&format!(",\"task\":{}", task.0));
                if let Some(p) = pool {
                    line.push_str(&format!(",\"pool\":{p}"));
                }
            }
            TraceEvent::Resumed { task, .. } | TraceEvent::Revoked { task, .. } => {
                line.push_str(&format!(",\"task\":{}", task.0));
            }
            TraceEvent::Idle { .. } => {}
        }
        line.push_str("}\n");
        line
    }
}

/// Receives the event stream of one run.
///
/// Sinks observe events in server order; emitters call [`header`]
/// exactly once, before any [`record`].
///
/// [`header`]: TraceSink::header
/// [`record`]: TraceSink::record
pub trait TraceSink {
    /// Called once at the start of the run. Default: ignore.
    fn header(&mut self, header: &TraceHeader) {
        let _ = header;
    }

    /// Called for every event, in order.
    fn record(&mut self, event: &TraceEvent);
}

/// Discards every event — tracing off.
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _event: &TraceEvent) {}
}

/// Buffers the run in memory; [`MemorySink::into_trace`] yields the
/// complete [`Trace`].
#[derive(Debug, Default)]
pub struct MemorySink {
    header: Option<TraceHeader>,
    events: Vec<TraceEvent>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// The buffered trace, or `None` if no header was ever recorded.
    pub fn into_trace(self) -> Option<Trace> {
        Some(Trace {
            header: self.header?,
            events: self.events,
        })
    }
}

impl TraceSink for MemorySink {
    fn header(&mut self, header: &TraceHeader) {
        self.header = Some(header.clone());
    }

    fn record(&mut self, event: &TraceEvent) {
        self.events.push(event.clone());
    }
}

/// Streams a run's trace to a JSONL file in *whole-line batches*.
///
/// Event lines accumulate in an internal buffer holding only complete
/// lines, flushed to the OS:
///
/// * when the buffer exceeds [`FileSink::BATCH_BYTES`],
/// * immediately after the header line,
/// * on every *lease-affecting* event (`Failed`, `Resumed`,
///   `Speculated`, `Revoked`) — the records an audit of a crashed run
///   most needs in order to explain task custody,
/// * and at [`FileSink::finish`] (or drop).
///
/// Long server runs therefore never buffer their trace in memory nor
/// pay one `write(2)` per allocation, and because flushes happen only
/// on line boundaries, a killed process leaves a valid — possibly
/// IC0405-truncated — trace on disk at every instant.
///
/// I/O errors are sticky: the first one is kept and every later write
/// is skipped; [`FileSink::finish`] surfaces it.
#[derive(Debug)]
pub struct FileSink {
    out: std::fs::File,
    buf: String,
    err: Option<io::Error>,
}

impl FileSink {
    /// Buffered bytes past which the next line triggers a flush.
    pub const BATCH_BYTES: usize = 16 * 1024;

    /// Create (truncating) the trace file at `path`.
    pub fn create(path: impl AsRef<Path>) -> io::Result<FileSink> {
        Ok(FileSink {
            out: std::fs::File::create(path)?,
            buf: String::new(),
            err: None,
        })
    }

    fn write_line(&mut self, line: &str) {
        if self.err.is_some() {
            return;
        }
        self.buf.push_str(line);
        if self.buf.len() >= FileSink::BATCH_BYTES {
            self.flush_lines();
        }
    }

    /// Push every buffered (complete) line to the OS.
    fn flush_lines(&mut self) {
        if self.err.is_some() || self.buf.is_empty() {
            return;
        }
        if let Err(e) = self.out.write_all(self.buf.as_bytes()) {
            self.err = Some(e);
        }
        self.buf.clear();
    }

    /// Flush and close, surfacing the first write error if any.
    pub fn finish(mut self) -> io::Result<()> {
        self.flush_lines();
        match self.err.take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

impl Drop for FileSink {
    fn drop(&mut self) {
        self.flush_lines();
    }
}

impl TraceSink for FileSink {
    fn header(&mut self, header: &TraceHeader) {
        self.write_line(&header.to_json_line());
        // The header is the one line without which the file is not a
        // trace at all — put it on disk before serving starts.
        self.flush_lines();
    }

    fn record(&mut self, event: &TraceEvent) {
        self.write_line(&event.to_json_line());
        if matches!(
            event,
            TraceEvent::Failed { .. }
                | TraceEvent::Resumed { .. }
                | TraceEvent::Speculated { .. }
                | TraceEvent::Revoked { .. }
        ) {
            self.flush_lines();
        }
    }
}

/// A complete captured run: header plus event stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Run parameters and the dag.
    pub header: TraceHeader,
    /// The events, in server order.
    pub events: Vec<TraceEvent>,
}

/// A malformed trace file.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceParseError {
    /// 1-based line number of the offending line (0 for file-level
    /// problems such as a missing header).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "trace line {}: {}", self.line, self.message)
        } else {
            write!(f, "trace: {}", self.message)
        }
    }
}

impl std::error::Error for TraceParseError {}

fn err(line: usize, message: impl Into<String>) -> TraceParseError {
    TraceParseError {
        line,
        message: message.into(),
    }
}

impl Trace {
    /// Reconstruct the dag embedded in the header.
    pub fn dag(&self) -> Result<Dag, DagError> {
        from_arcs(self.header.nodes, &self.header.arcs)
    }

    /// The tasks in allocation order (failures reallocate, so a task
    /// may appear more than once). Speculative duplicate leases
    /// (`spec` events) are *not* allocations in the scheduling sense —
    /// their task was already counted — so they are excluded.
    pub fn allocation_order(&self) -> Vec<NodeId> {
        self.events
            .iter()
            .filter_map(|ev| match *ev {
                TraceEvent::Allocated { task, .. } => Some(task),
                _ => None,
            })
            .collect()
    }

    /// The tasks in completion order — the execution order the run
    /// actually realized, comparable against the optimal envelope.
    pub fn completion_order(&self) -> Vec<NodeId> {
        self.events
            .iter()
            .filter_map(|ev| match *ev {
                TraceEvent::Completed { task, .. } => Some(task),
                _ => None,
            })
            .collect()
    }

    /// Per-client *observed* service times: for every client slot, the
    /// allocation→outcome duration of each task it served (completions
    /// and failures alike, in event order). Together with the declared
    /// [`TraceHeader::workers`] parameters this is what a replay needs
    /// to reproduce the run's timing, not just its order.
    pub fn observed_service_times(&self) -> Vec<Vec<f64>> {
        let mut out = vec![Vec::new(); self.header.clients];
        let mut open: Vec<(usize, NodeId, f64)> = Vec::new();
        for ev in &self.events {
            match *ev {
                TraceEvent::Allocated {
                    client, task, time, ..
                } => {
                    if client >= out.len() {
                        out.resize(client + 1, Vec::new());
                    }
                    open.push((client, task, time));
                }
                TraceEvent::Speculated {
                    client, task, time, ..
                } => {
                    // A speculative duplicate lease opens a service
                    // interval of its own for the stealing client.
                    if client >= out.len() {
                        out.resize(client + 1, Vec::new());
                    }
                    open.push((client, task, time));
                }
                TraceEvent::Completed {
                    client, task, time, ..
                }
                | TraceEvent::Failed {
                    client, task, time, ..
                } => {
                    if let Some(i) = open.iter().position(|&(c, t, _)| c == client && t == task) {
                        let (_, _, start) = open.swap_remove(i);
                        if client >= out.len() {
                            out.resize(client + 1, Vec::new());
                        }
                        out[client].push(time - start);
                    }
                }
                TraceEvent::Revoked { client, task, .. } => {
                    // A revoked duplicate produced no outcome: close
                    // the open interval without recording a sample.
                    if let Some(i) = open.iter().position(|&(c, t, _)| c == client && t == task) {
                        open.swap_remove(i);
                    }
                }
                TraceEvent::Idle { .. } | TraceEvent::Resumed { .. } => {}
            }
        }
        out
    }

    /// Serialize to JSONL: the header line, then one line per event.
    pub fn to_jsonl(&self) -> String {
        let mut out = self.header.to_json_line();
        for ev in &self.events {
            out.push_str(&ev.to_json_line());
        }
        out
    }

    /// Parse a JSONL trace. Blank lines are ignored; the first
    /// non-blank line must be the header.
    pub fn from_jsonl(text: &str) -> Result<Trace, TraceParseError> {
        let mut header: Option<TraceHeader> = None;
        let mut events = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            let line = raw.trim();
            if line.is_empty() {
                continue;
            }
            let v = json::parse(line).map_err(|e| err(lineno, e))?;
            let kind = v
                .get("type")
                .and_then(Json::as_str)
                .ok_or_else(|| err(lineno, "missing \"type\" field"))?
                .to_string();
            if header.is_none() {
                if kind != "header" {
                    return Err(err(lineno, "first line must be the trace header"));
                }
                header = Some(parse_header(&v, lineno)?);
                continue;
            }
            if kind == "header" {
                return Err(err(lineno, "duplicate header"));
            }
            events.push(parse_event(&kind, &v, lineno)?);
        }
        Ok(Trace {
            header: header.ok_or_else(|| err(0, "empty trace (no header line)"))?,
            events,
        })
    }
}

fn field<'a>(v: &'a Json, key: &str, lineno: usize) -> Result<&'a Json, TraceParseError> {
    v.get(key)
        .ok_or_else(|| err(lineno, format!("missing \"{key}\" field")))
}

fn parse_header(v: &Json, lineno: usize) -> Result<TraceHeader, TraceParseError> {
    let bad = |key: &str| err(lineno, format!("invalid \"{key}\" field"));
    let version = field(v, "version", lineno)?
        .as_u64()
        .and_then(|u| u32::try_from(u).ok())
        .ok_or_else(|| bad("version"))?;
    let nodes = field(v, "nodes", lineno)?
        .as_usize()
        .ok_or_else(|| bad("nodes"))?;
    let clients = field(v, "clients", lineno)?
        .as_usize()
        .ok_or_else(|| bad("clients"))?;
    let seed = field(v, "seed", lineno)?
        .as_u64()
        .ok_or_else(|| bad("seed"))?;
    let policy = field(v, "policy", lineno)?
        .as_str()
        .ok_or_else(|| bad("policy"))?
        .to_string();
    let mut arcs = Vec::new();
    for pair in field(v, "arcs", lineno)?
        .as_arr()
        .ok_or_else(|| bad("arcs"))?
    {
        let pair = pair
            .as_arr()
            .filter(|p| p.len() == 2)
            .ok_or_else(|| err(lineno, "each arc must be a [parent, child] pair"))?;
        let u = pair[0]
            .as_u64()
            .and_then(|x| u32::try_from(x).ok())
            .ok_or_else(|| bad("arcs"))?;
        let w = pair[1]
            .as_u64()
            .and_then(|x| u32::try_from(x).ok())
            .ok_or_else(|| bad("arcs"))?;
        arcs.push((u, w));
    }
    // Optional since version 2; version-1 traces parse as empty.
    let mut workers = Vec::new();
    if let Some(list) = v.get("workers") {
        for w in list.as_arr().ok_or_else(|| bad("workers"))? {
            workers.push(WorkerParams {
                client: field(w, "client", lineno)?
                    .as_usize()
                    .ok_or_else(|| bad("workers"))?,
                id: field(w, "id", lineno)?
                    .as_str()
                    .ok_or_else(|| bad("workers"))?
                    .to_string(),
                speed: field(w, "speed", lineno)?
                    .as_f64()
                    .ok_or_else(|| bad("workers"))?,
            });
        }
    }
    Ok(TraceHeader {
        version,
        nodes,
        arcs,
        clients,
        seed,
        policy,
        workers,
    })
}

fn parse_event(kind: &str, v: &Json, lineno: usize) -> Result<TraceEvent, TraceParseError> {
    let bad = |key: &str| err(lineno, format!("invalid \"{key}\" field"));
    let step = field(v, "step", lineno)?
        .as_u64()
        .ok_or_else(|| bad("step"))?;
    let time = field(v, "t", lineno)?.as_f64().ok_or_else(|| bad("t"))?;
    let client = field(v, "client", lineno)?
        .as_usize()
        .ok_or_else(|| bad("client"))?;
    if kind == "idle" {
        return Ok(TraceEvent::Idle { step, time, client });
    }
    if !matches!(
        kind,
        "alloc" | "complete" | "fail" | "resume" | "spec" | "revoke"
    ) {
        return Err(err(lineno, format!("unknown event type \"{kind}\"")));
    }
    let task = NodeId(
        field(v, "task", lineno)?
            .as_u64()
            .and_then(|u| u32::try_from(u).ok())
            .ok_or_else(|| bad("task"))?,
    );
    let pool = match v.get("pool") {
        Some(p) => Some(p.as_usize().ok_or_else(|| bad("pool"))?),
        None => None,
    };
    match kind {
        "alloc" => Ok(TraceEvent::Allocated {
            step,
            time,
            client,
            task,
            pool,
        }),
        "complete" => Ok(TraceEvent::Completed {
            step,
            time,
            client,
            task,
            pool,
        }),
        "resume" => Ok(TraceEvent::Resumed {
            step,
            time,
            client,
            task,
        }),
        "spec" => Ok(TraceEvent::Speculated {
            step,
            time,
            client,
            task,
            pool,
        }),
        "revoke" => Ok(TraceEvent::Revoked {
            step,
            time,
            client,
            task,
        }),
        _ => Ok(TraceEvent::Failed {
            step,
            time,
            client,
            task,
            pool,
        }),
    }
}

/// Replays a fixed allocation order as a dynamic [`AllocationPolicy`]:
/// the k-th choice is the k-th task of the order. Built from a captured
/// [`Trace`], this re-drives the simulator along the same allocation
/// sequence — the canonical example of a policy the closed `Policy`
/// enum could not express.
#[derive(Debug)]
pub struct ReplayPolicy {
    order: Vec<NodeId>,
    cursor: Cell<usize>,
}

impl ReplayPolicy {
    /// Replay an explicit allocation order.
    pub fn new(order: Vec<NodeId>) -> ReplayPolicy {
        ReplayPolicy {
            order,
            cursor: Cell::new(0),
        }
    }

    /// Replay the allocation order of a captured trace.
    pub fn from_trace(trace: &Trace) -> ReplayPolicy {
        ReplayPolicy::new(trace.allocation_order())
    }
}

impl AllocationPolicy for ReplayPolicy {
    fn name(&self) -> String {
        "REPLAY".into()
    }

    fn prepare(&self, _dag: &Dag) {
        self.cursor.set(0);
    }

    /// # Panics
    /// Panics if the replayed order is exhausted or its next task is
    /// not in the pool *and was never executed* — i.e. the run being
    /// driven genuinely diverged from the run that produced the order
    /// (different dag, config, or seed). Entries whose task this run
    /// already executed are skipped instead: a recorded run that lost
    /// tasks to client failures legally re-allocates them later, and a
    /// replay that does not fail the same way must not be flagged for
    /// that divergence.
    fn choose(&self, ctx: &PolicyContext<'_, '_>, pool: &[NodeId]) -> usize {
        loop {
            let k = self.cursor.get();
            assert!(
                k < self.order.len(),
                "replayed allocation order exhausted after {k} steps"
            );
            self.cursor.set(k + 1);
            let target = self.order[k];
            if let Some(i) = pool.iter().position(|&v| v == target) {
                return i;
            }
            assert!(
                ctx.state.is_executed(target),
                "replayed allocation #{k} ({target:?}) is not in the ELIGIBLE pool; \
                 the run diverged from the recorded one"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_dag::builder::from_arcs as build;

    fn sample_trace() -> Trace {
        Trace {
            header: TraceHeader {
                version: TRACE_VERSION,
                nodes: 3,
                arcs: vec![(0, 1), (0, 2)],
                clients: 2,
                seed: u64::MAX,
                policy: "FIFO \"quoted\"".into(),
                workers: vec![
                    WorkerParams {
                        client: 0,
                        id: "client-0".into(),
                        speed: 1.0,
                    },
                    WorkerParams {
                        client: 1,
                        id: "w \"fast\"".into(),
                        speed: 2.5,
                    },
                ],
            },
            events: vec![
                TraceEvent::Allocated {
                    step: 0,
                    time: 0.0,
                    client: 0,
                    task: NodeId(0),
                    pool: Some(0),
                },
                TraceEvent::Idle {
                    step: 1,
                    time: 0.0,
                    client: 1,
                },
                TraceEvent::Completed {
                    step: 2,
                    time: 1.25,
                    client: 0,
                    task: NodeId(0),
                    pool: Some(2),
                },
                TraceEvent::Failed {
                    step: 3,
                    time: 2.5,
                    client: 1,
                    task: NodeId(2),
                    pool: None,
                },
            ],
        }
    }

    #[test]
    fn jsonl_round_trips() {
        let t = sample_trace();
        let text = t.to_jsonl();
        let back = Trace::from_jsonl(&text).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn v3_lease_events_round_trip_and_stay_out_of_the_orders() {
        let mut t = sample_trace();
        t.events.extend([
            TraceEvent::Resumed {
                step: 4,
                time: 3.0,
                client: 0,
                task: NodeId(1),
            },
            TraceEvent::Speculated {
                step: 5,
                time: 3.5,
                client: 1,
                task: NodeId(1),
                pool: Some(0),
            },
            TraceEvent::Speculated {
                step: 6,
                time: 3.75,
                client: 0,
                task: NodeId(2),
                pool: None,
            },
            TraceEvent::Revoked {
                step: 7,
                time: 4.0,
                client: 1,
                task: NodeId(1),
            },
        ]);
        let back = Trace::from_jsonl(&t.to_jsonl()).unwrap();
        assert_eq!(back, t);
        // Lease-lifecycle events are not allocations or completions.
        assert_eq!(t.allocation_order(), vec![NodeId(0)]);
        assert_eq!(t.completion_order(), vec![NodeId(0)]);
    }

    #[test]
    fn revoked_speculation_records_no_service_time() {
        let mut t = sample_trace();
        t.events.extend([
            TraceEvent::Speculated {
                step: 4,
                time: 3.0,
                client: 1,
                task: NodeId(1),
                pool: Some(0),
            },
            TraceEvent::Revoked {
                step: 5,
                time: 4.0,
                client: 1,
                task: NodeId(1),
            },
        ]);
        let obs = t.observed_service_times();
        assert!(obs[1].is_empty(), "revoked work yields no sample");

        // An accepted speculative completion does yield one.
        let mut t2 = sample_trace();
        t2.events.extend([
            TraceEvent::Speculated {
                step: 4,
                time: 3.0,
                client: 1,
                task: NodeId(1),
                pool: Some(0),
            },
            TraceEvent::Completed {
                step: 5,
                time: 4.5,
                client: 1,
                task: NodeId(1),
                pool: Some(0),
            },
        ]);
        assert_eq!(t2.observed_service_times()[1], vec![1.5]);
    }

    #[test]
    fn version1_headers_parse_with_empty_workers() {
        let v1 = "{\"type\":\"header\",\"version\":1,\"nodes\":2,\"clients\":1,\
                  \"seed\":\"7\",\"policy\":\"FIFO\",\"arcs\":[[0,1]]}\n";
        let t = Trace::from_jsonl(v1).unwrap();
        assert!(t.header.workers.is_empty());
        assert_eq!(t.header.nodes, 2);
    }

    #[test]
    fn file_sink_streams_a_parseable_trace() {
        let t = sample_trace();
        let dir = std::env::temp_dir().join("ic-sim-filesink-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("trace-{}.jsonl", std::process::id()));
        let mut sink = FileSink::create(&path).unwrap();
        sink.header(&t.header);
        for ev in &t.events {
            sink.record(ev);
        }
        sink.finish().unwrap();
        let back = Trace::from_jsonl(&std::fs::read_to_string(&path).unwrap()).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back, t);
    }

    #[test]
    fn file_sink_killed_mid_run_leaves_a_replayable_trace() {
        // Simulate a SIGKILL between flushes: the sink is leaked
        // (destructor never runs, like a killed process), and the
        // bytes on disk must still parse as a trace — batching may
        // lose *whole trailing lines*, never corrupt one.
        let t = sample_trace();
        let dir = std::env::temp_dir().join("ic-sim-filesink-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("trace-kill-{}.jsonl", std::process::id()));
        let mut sink = FileSink::create(&path).unwrap();
        sink.header(&t.header);
        sink.record(&t.events[0]); // alloc: buffered
        sink.record(&t.events[3]); // failed: lease-affecting, flushes
        sink.record(&t.events[1]); // idle: buffered, will be lost
        std::mem::forget(sink);
        let back = Trace::from_jsonl(&std::fs::read_to_string(&path).unwrap()).unwrap();
        std::fs::remove_file(&path).ok();
        // Header plus everything up to the lease-affecting event
        // survive; the buffered tail is gone but nothing is mangled.
        assert_eq!(back.header, t.header);
        assert_eq!(back.events, vec![t.events[0].clone(), t.events[3].clone()]);
    }

    #[test]
    fn file_sink_flushes_once_the_batch_fills() {
        let t = sample_trace();
        let dir = std::env::temp_dir().join("ic-sim-filesink-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("trace-batch-{}.jsonl", std::process::id()));
        let mut sink = FileSink::create(&path).unwrap();
        sink.header(&t.header);
        let header_bytes = std::fs::metadata(&path).unwrap().len();
        // Non-lease-affecting events buffer until BATCH_BYTES…
        sink.record(&t.events[0]);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), header_bytes);
        // …and spill once the batch fills.
        while std::fs::metadata(&path).unwrap().len() == header_bytes {
            sink.record(&t.events[1]);
        }
        sink.finish().unwrap();
        let back = Trace::from_jsonl(&std::fs::read_to_string(&path).unwrap()).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(back.events.len() > 2);
    }

    #[test]
    fn observed_service_times_measure_alloc_to_outcome() {
        let t = sample_trace();
        let obs = t.observed_service_times();
        // Client 0: allocated task 0 at t=0, completed at t=1.25.
        assert_eq!(obs[0], vec![1.25]);
        // Client 1: only a dangling failure (no matching allocation).
        assert!(obs[1].is_empty());
    }

    #[test]
    fn dag_rebuilds_from_header() {
        let t = sample_trace();
        let g = t.dag().unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.arcs().count(), 2);
    }

    #[test]
    fn orders_extract() {
        let t = sample_trace();
        assert_eq!(t.allocation_order(), vec![NodeId(0)]);
        assert_eq!(t.completion_order(), vec![NodeId(0)]);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let e = Trace::from_jsonl("").unwrap_err();
        assert_eq!(e.line, 0);
        let e = Trace::from_jsonl("{\"type\":\"alloc\"}\n").unwrap_err();
        assert_eq!(e.line, 1);
        let good = sample_trace().to_jsonl();
        let bad = format!("{good}{{\"type\":\"warp\",\"step\":9,\"t\":0,\"client\":0}}\n");
        let e = Trace::from_jsonl(&bad).unwrap_err();
        assert!(e.message.contains("unknown event type"), "{e}");
    }

    #[test]
    fn replay_policy_follows_order() {
        let g = build(3, &[(0, 1), (0, 2)]).unwrap();
        let p = ReplayPolicy::new(vec![NodeId(0), NodeId(2), NodeId(1)]);
        let s = ic_sched::heuristics::schedule_with(&g, &p);
        assert_eq!(s.order(), &[NodeId(0), NodeId(2), NodeId(1)]);
    }

    #[test]
    #[should_panic(expected = "not in the ELIGIBLE pool")]
    fn replay_policy_detects_divergence() {
        let g = build(3, &[(0, 1), (0, 2)]).unwrap();
        let p = ReplayPolicy::new(vec![NodeId(1), NodeId(0), NodeId(2)]);
        let _ = ic_sched::heuristics::schedule_with(&g, &p);
    }

    #[test]
    fn replay_policy_skips_recorded_reallocations() {
        // The recorded run lost task 0 once: its allocation order holds
        // a duplicate. A failure-free replay executes 0 on first sight
        // and must skip the stale re-allocation entry, not panic.
        let g = build(3, &[(0, 1), (0, 2)]).unwrap();
        let p = ReplayPolicy::new(vec![NodeId(0), NodeId(0), NodeId(2), NodeId(1)]);
        let s = ic_sched::heuristics::schedule_with(&g, &p);
        assert_eq!(s.order(), &[NodeId(0), NodeId(2), NodeId(1)]);
    }
}
