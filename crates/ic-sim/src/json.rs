//! A minimal hand-rolled JSON reader/writer for the trace format and
//! the `ic-net` wire protocol.
//!
//! The workspace is zero-external-deps by design, so the JSONL trace
//! files (and the length-prefixed frames `ic-net` exchanges over TCP)
//! are parsed with a small recursive-descent parser. Numbers keep
//! their raw text so `u64` seeds and `f64` timestamps both round-trip
//! exactly through the shortest `Display` form Rust emits.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw text.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Field `key` of an object; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as `u64`: a number, or a numeric string (large seeds
    /// are written as strings so they survive `f64` readers).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            // Seeds are written as strings (they may exceed 2^53); plain
            // numbers are accepted too.
            Json::Num(raw) => raw.parse().ok(),
            Json::Str(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// [`Json::as_u64`], narrowed to `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|v| usize::try_from(v).ok())
    }

    /// The items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Escape `s` as a JSON string literal, quotes included (RFC 8259).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => out.push_str(&format!("\\u{:04x}", u32::from(c))),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parse a complete JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: combine when a low half
                            // follows, otherwise substitute U+FFFD.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined).unwrap_or('\u{FFFD}')
                                } else {
                                    '\u{FFFD}'
                                }
                            } else {
                                char::from_u32(cp).unwrap_or('\u{FFFD}')
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    out.push(char::from(b));
                    self.pos += 1;
                }
                Some(b) => {
                    // Consume one multibyte UTF-8 character. The input
                    // is a &str, so boundaries are valid; the lead byte
                    // fixes the encoded length, and only that window is
                    // re-validated — not the whole remaining input,
                    // which would make long strings quadratic to parse.
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = (self.pos + len).min(self.bytes.len());
                    let s = std::str::from_utf8(&self.bytes[self.pos..end])
                        .map_err(|_| "invalid utf-8")?;
                    let c = s
                        .chars()
                        .next()
                        .ok_or_else(|| format!("truncated input at byte {}", self.pos))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        if self.pos + 4 > self.bytes.len() {
            return Err("truncated \\u escape".into());
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| "invalid \\u escape")?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| "invalid \\u escape")?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid number at byte {start}"))?;
        if raw.parse::<f64>().is_err() {
            return Err(format!("invalid number '{raw}' at byte {start}"));
        }
        Ok(Json::Num(raw.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v =
            parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": true, "d": null}, "e": "x\ny"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Bool(true)));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn u64_seeds_round_trip_via_strings() {
        let seed = u64::MAX;
        let v = parse(&format!("{{\"seed\": \"{seed}\"}}")).unwrap();
        assert_eq!(v.get("seed").unwrap().as_u64(), Some(seed));
    }

    #[test]
    fn string_escaping_round_trips() {
        for s in ["plain", "with \"quotes\"", "tab\tnl\n", "uni ✓", "\u{1}"] {
            let enc = json_string(s);
            let v = parse(&enc).unwrap();
            assert_eq!(v.as_str(), Some(s), "{enc}");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\": 1} trailing").is_err());
        assert!(parse("nope").is_err());
    }
}
