//! # `ic-sim` — a discrete-event Internet-computing server simulator
//!
//! IC-Scheduling Theory targets a server that doles out ELIGIBLE tasks
//! of a computation-dag to remote clients whose speeds and reliability
//! it does not control. The theory's quality measure — the number of
//! ELIGIBLE tasks after every execution — matters because (§2.2 of the
//! paper):
//!
//! 1. a richer ELIGIBLE pool reduces the chance of *gridlock*: a client
//!    asks for work but none can be allocated until already-allocated
//!    tasks return;
//! 2. when a *batch* of requests arrives at once, a richer pool
//!    satisfies more of them, increasing effective parallelism.
//!
//! This crate simulates exactly that setting (we have no Grid/Condor
//! testbed; the paper's companion evaluations [15, 19] are simulations
//! of the same kind): heterogeneous clients with stochastic service
//! times and optional stragglers repeatedly request tasks; the server
//! allocates the ELIGIBLE task chosen by any
//! [`ic_sched::AllocationPolicy`] — a precomputed
//! [`ic_sched::Schedule`] acts as a static priority list. Reported
//! metrics: makespan, gridlock events, client idle time, utilization,
//! and the ELIGIBLE-pool trace.
//!
//! Every run can stream its full event history — allocations,
//! completions, failures, idle requests — through a
//! [`trace::TraceSink`]; the [`trace`] module defines the JSONL trace
//! format that `ic-prio audit --schedule` replays, and every metric in
//! [`SimResult`] is derived from that same event stream (one source of
//! truth; see [`SimResult::from_trace`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compare;
pub mod json;
pub mod metrics;
pub mod server;
pub mod trace;

pub use compare::{compare_policies, summarize_policy, PolicySummary};
pub use metrics::SimResult;
pub use server::{simulate, simulate_traced, ClientProfile, SimConfig};
pub use trace::{
    FileSink, MemorySink, NullSink, ReplayPolicy, Trace, TraceEvent, TraceHeader, TraceSink,
    WorkerParams,
};
