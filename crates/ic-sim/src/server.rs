//! The event-driven server/client simulation.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use ic_dag::rng::XorShift64;
use ic_dag::{Dag, NodeId};
use ic_sched::eligibility::ExecState;
use ic_sched::policy::{AllocationPolicy, PolicyContext};

use crate::metrics::{MetricsFold, SimResult};
use crate::trace::{NullSink, TraceEvent, TraceHeader, TraceSink, WorkerParams};

/// Stochastic profile of the remote clients.
#[derive(Debug, Clone)]
pub struct ClientProfile {
    /// Number of concurrent clients.
    pub num_clients: usize,
    /// Mean task service time (arbitrary time units).
    pub mean_service: f64,
    /// Uniform jitter fraction: service ~ U[mean·(1-j), mean·(1+j)].
    pub jitter: f64,
    /// Probability that a task *straggles*.
    pub straggler_prob: f64,
    /// Multiplier applied to a straggling task's service time.
    pub straggler_factor: f64,
    /// Probability that an allocated task *fails* (client crash or bad
    /// result, cf. \[14\]): the work is lost after the service time and
    /// the task returns to the ELIGIBLE pool for reallocation.
    pub failure_prob: f64,
    /// Communication cost per dag arc incident to a task (the paper's
    /// future-work thrust 3): every allocation pays
    /// `comm_cost_per_arc * (in_degree + out_degree)` on top of its
    /// compute time — inputs arrive over the Internet, results return.
    pub comm_cost_per_arc: f64,
    /// Optional per-client speed factors (length `num_clients`): client
    /// `i` finishes compute in `1 / speed_factors[i]` of the base time —
    /// the heterogeneous volunteer hardware of real IC platforms.
    pub speed_factors: Option<Vec<f64>>,
}

impl Default for ClientProfile {
    fn default() -> Self {
        ClientProfile {
            num_clients: 4,
            mean_service: 1.0,
            jitter: 0.5,
            straggler_prob: 0.05,
            straggler_factor: 8.0,
            failure_prob: 0.0,
            comm_cost_per_arc: 0.0,
            speed_factors: None,
        }
    }
}

/// Full simulation configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The client population.
    pub clients: ClientProfile,
    /// RNG seed (simulations are deterministic given the seed).
    pub seed: u64,
    /// Optional per-task compute weights (multiplier on the mean
    /// service time), e.g. coarse-task granularities. Length must match
    /// the dag when present.
    pub task_weights: Option<Vec<f64>>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            clients: ClientProfile::default(),
            seed: 0x1C5EED,
            task_weights: None,
        }
    }
}

impl SimConfig {
    /// A configuration reproducing the client population recorded in a
    /// trace header: same client count, same seed, and the declared
    /// per-client speed factors when the header carries them
    /// ([`TraceHeader::workers`]). Combined with
    /// [`crate::ReplayPolicy`], this re-drives a captured run's timing
    /// — not just its order — from the trace file alone. Profile knobs
    /// the header does not record (mean service, jitter, stragglers,
    /// failures) keep their defaults; set them to the original run's
    /// values when they differed.
    pub fn for_replay(header: &TraceHeader) -> SimConfig {
        let num_clients = header.clients.max(1);
        let speed_factors = if header.workers.is_empty() {
            None
        } else {
            let mut speeds = vec![1.0; num_clients];
            for w in &header.workers {
                if w.client < speeds.len() {
                    speeds[w.client] = w.speed;
                }
            }
            Some(speeds)
        };
        SimConfig {
            clients: ClientProfile {
                num_clients,
                speed_factors,
                ..ClientProfile::default()
            },
            seed: header.seed,
            ..SimConfig::default()
        }
    }
}

/// Totally-ordered f64 for the event queue.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Time(f64);
impl Eq for Time {}
impl PartialOrd for Time {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Time {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Simulate executing `dag` under `policy` with the client population
/// of `cfg`. Equivalent to [`simulate_traced`] with the trace
/// discarded.
///
/// All clients request work at time 0 (the paper's batch scenario);
/// whenever a client finishes a task it immediately requests another.
/// The server allocates, among currently ELIGIBLE *unallocated* tasks,
/// the one `policy` chooses — a precomputed [`ic_sched::Schedule`]
/// serves as a static priority list, and any
/// [`ic_sched::AllocationPolicy`] can decide dynamically. A request
/// that finds the pool empty while allocated tasks are still
/// outstanding is a *gridlock event*; the client then idles until an
/// allocation becomes possible.
///
/// ```
/// use ic_dag::builder::from_arcs;
/// use ic_sched::Schedule;
/// use ic_sim::{simulate, SimConfig};
/// let diamond = from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
/// let r = simulate(&diamond, &Schedule::in_id_order(&diamond), &SimConfig::default());
/// assert_eq!(r.completions, 4);
/// assert!(r.makespan > 0.0);
/// ```
///
/// # Panics
/// Panics if the policy rejects the dag (e.g. a `Schedule` that does
/// not cover it) or `num_clients == 0`.
pub fn simulate(dag: &Dag, policy: &dyn AllocationPolicy, cfg: &SimConfig) -> SimResult {
    simulate_traced(dag, policy, cfg, &mut NullSink)
}

/// [`simulate`], additionally streaming the run's execution trace into
/// `sink` (header first, then every event in server order). The
/// returned metrics are the fold of exactly that event stream, so a
/// captured trace reproduces them via [`SimResult::from_trace`].
///
/// # Panics
/// Panics if the policy rejects the dag or `num_clients == 0`.
pub fn simulate_traced(
    dag: &Dag,
    policy: &dyn AllocationPolicy,
    cfg: &SimConfig,
    sink: &mut dyn TraceSink,
) -> SimResult {
    assert!(cfg.clients.num_clients > 0, "need at least one client");
    policy.prepare(dag);
    let n = dag.num_nodes();
    let clients = cfg.clients.num_clients;
    let mut rng = XorShift64::new(cfg.seed);

    if let Some(w) = &cfg.task_weights {
        assert_eq!(w.len(), n, "task_weights must cover the dag");
    }
    if let Some(sp) = &cfg.clients.speed_factors {
        assert_eq!(sp.len(), clients, "speed_factors must cover the clients");
        assert!(
            sp.iter().all(|&f| f > 0.0),
            "speed factors must be positive"
        );
    }

    // The ELIGIBLE-and-unallocated pool lives inside ExecState: claims
    // and returns are O(1) swap-removals, so allocation cost per event
    // no longer scales with the dag.
    let mut st = ExecState::new(dag);

    // Per-client declared service parameters, so replays can rebuild
    // the client population from the header alone.
    let worker_params = (0..clients)
        .map(|c| WorkerParams {
            client: c,
            id: format!("client-{c}"),
            speed: cfg.clients.speed_factors.as_ref().map_or(1.0, |sp| sp[c]),
        })
        .collect();
    sink.header(
        &TraceHeader::for_run(dag, clients, cfg.seed, &policy.name()).with_workers(worker_params),
    );
    let mut fold = MetricsFold::new(n, st.pool_len(), clients);
    let mut step = 0u64;
    // Metrics and sink see the identical stream, in emission order.
    let mut emit = |fold: &mut MetricsFold, ev: TraceEvent| {
        fold.apply(&ev);
        sink.record(&ev);
    };

    // Completion events: (time, client, node).
    let mut events: BinaryHeap<Reverse<(Time, usize, NodeId)>> = BinaryHeap::new();
    // Clients waiting for work, with the time they began waiting.
    let mut waiting: Vec<(usize, f64)> = Vec::new();

    let service = |rng: &mut XorShift64, v: NodeId, client: usize| -> f64 {
        let c = &cfg.clients;
        let weight = cfg.task_weights.as_ref().map_or(1.0, |w| w[v.index()]);
        let speed = c.speed_factors.as_ref().map_or(1.0, |sp| sp[client]);
        let base = c.mean_service * weight * (1.0 + c.jitter * (rng.gen_f64() * 2.0 - 1.0)) / speed;
        let compute = if c.straggler_prob > 0.0 && rng.gen_f64() < c.straggler_prob {
            base * c.straggler_factor
        } else {
            base
        };
        compute + c.comm_cost_per_arc * (dag.in_degree(v) + dag.out_degree(v)) as f64
    };

    let mut allocation_steps = 0usize;
    let mut allocate =
        |rng: &mut XorShift64, st: &mut ExecState<'_>, client: usize, now: f64| -> (NodeId, f64) {
            let ctx = PolicyContext {
                dag,
                state: st,
                step: allocation_steps,
                retries: None,
            };
            let i = policy.choose(&ctx, st.pool());
            let v = st.claim_at(i);
            allocation_steps += 1;
            (v, now + service(rng, v, client))
        };

    // Initial batch of requests at t = 0.
    for client in 0..clients {
        if st.pool_len() == 0 {
            emit(
                &mut fold,
                TraceEvent::Idle {
                    step,
                    time: 0.0,
                    client,
                },
            );
            step += 1;
            waiting.push((client, 0.0));
        } else {
            let (v, done) = allocate(&mut rng, &mut st, client, 0.0);
            events.push(Reverse((Time(done), client, v)));
            emit(
                &mut fold,
                TraceEvent::Allocated {
                    step,
                    time: 0.0,
                    client,
                    task: v,
                    pool: Some(st.pool_len()),
                },
            );
            step += 1;
        }
    }

    while let Some(Reverse((Time(now), client, v))) = events.pop() {
        if cfg.clients.failure_prob > 0.0 && rng.gen_f64() < cfg.clients.failure_prob {
            // The client lost the task: it returns to the pool (its
            // parents are all executed, so it is still ELIGIBLE).
            let unclaimed = st.unclaim(v).is_ok();
            debug_assert!(
                unclaimed,
                "a lost task was claimed, hence ELIGIBLE and unpooled"
            );
            emit(
                &mut fold,
                TraceEvent::Failed {
                    step,
                    time: now,
                    client,
                    task: v,
                    pool: Some(st.pool_len()),
                },
            );
        } else {
            // Executing a claimed task auto-pools its newly ELIGIBLE
            // children in id order.
            let executed = st.execute_counting(v).is_ok();
            debug_assert!(executed, "simulation executes tasks in a valid order");
            emit(
                &mut fold,
                TraceEvent::Completed {
                    step,
                    time: now,
                    client,
                    task: v,
                    pool: Some(st.pool_len()),
                },
            );
        }
        step += 1;

        // The finishing client requests again, after any already-waiting
        // clients are served (FIFO among clients).
        waiting.push((client, now));
        let mut still_waiting = Vec::new();
        for (cl, since) in waiting.drain(..) {
            if st.pool_len() == 0 {
                // A *fresh* request (made at this instant) hitting an
                // empty pool: the metrics fold counts it as gridlock
                // when allocated work is still outstanding.
                if since == now {
                    emit(
                        &mut fold,
                        TraceEvent::Idle {
                            step,
                            time: now,
                            client: cl,
                        },
                    );
                    step += 1;
                }
                still_waiting.push((cl, since));
            } else {
                let (w, done) = allocate(&mut rng, &mut st, cl, now);
                events.push(Reverse((Time(done), cl, w)));
                emit(
                    &mut fold,
                    TraceEvent::Allocated {
                        step,
                        time: now,
                        client: cl,
                        task: w,
                        pool: Some(st.pool_len()),
                    },
                );
                step += 1;
            }
        }
        waiting = still_waiting;
    }

    fold.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_dag::builder::from_arcs;
    use ic_sched::heuristics::{schedule_with, Policy};
    use ic_sched::Schedule;

    fn diamond() -> Dag {
        from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap()
    }

    fn quiet_cfg(seed: u64) -> SimConfig {
        SimConfig {
            clients: ClientProfile {
                num_clients: 2,
                mean_service: 1.0,
                jitter: 0.0,
                straggler_prob: 0.0,
                straggler_factor: 1.0,
                failure_prob: 0.0,
                comm_cost_per_arc: 0.0,
                speed_factors: None,
            },
            seed,
            task_weights: None,
        }
    }

    #[test]
    fn completes_all_tasks() {
        let g = diamond();
        let s = Schedule::in_id_order(&g);
        let r = simulate(&g, &s, &quiet_cfg(1));
        assert_eq!(r.completions, 4);
        assert_eq!(r.allocations, 4);
        assert!(r.makespan > 0.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let g = diamond();
        let s = Schedule::in_id_order(&g);
        let a = simulate(&g, &s, &SimConfig::default());
        let b = simulate(&g, &s, &SimConfig::default());
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.gridlock_events, b.gridlock_events);
    }

    #[test]
    fn chain_dag_serializes() {
        // A pure chain can use only one client; with deterministic unit
        // service the makespan is n.
        let g = from_arcs(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let s = Schedule::in_id_order(&g);
        let r = simulate(&g, &s, &quiet_cfg(7));
        assert!((r.makespan - 5.0).abs() < 1e-9);
        // The second client can never be served: batch shortfall of 1.
        assert_eq!(r.unsatisfied_at_batch, 1);
    }

    #[test]
    fn wide_dag_uses_both_clients() {
        // Two independent chains of length 2: two clients finish in ~2.
        let g = from_arcs(4, &[(0, 1), (2, 3)]).unwrap();
        let s = Schedule::in_id_order(&g);
        let r = simulate(&g, &s, &quiet_cfg(7));
        assert!((r.makespan - 2.0).abs() < 1e-9);
        assert!(r.utilization > 0.99);
    }

    #[test]
    fn pool_trace_is_recorded() {
        let g = diamond();
        let s = Schedule::in_id_order(&g);
        let r = simulate(&g, &s, &quiet_cfg(3));
        assert!(!r.eligible_trace.is_empty());
        assert_eq!(r.eligible_trace.last().unwrap().1, 0);
    }

    #[test]
    fn failures_requeue_and_still_complete() {
        let g = diamond();
        let s = Schedule::in_id_order(&g);
        let cfg = SimConfig {
            clients: ClientProfile {
                num_clients: 2,
                mean_service: 1.0,
                jitter: 0.0,
                straggler_prob: 0.0,
                straggler_factor: 1.0,
                failure_prob: 0.4,
                comm_cost_per_arc: 0.0,
                speed_factors: None,
            },
            seed: 9,
            task_weights: None,
        };
        let r = simulate(&g, &s, &cfg);
        assert_eq!(r.completions, 4, "every task eventually completes");
        assert!(r.failures > 0, "seed 9 at 40% should produce failures");
        assert_eq!(r.allocations, r.completions + r.failures);
    }

    #[test]
    fn failure_free_runs_have_equal_allocations_and_completions() {
        let g = diamond();
        let s = Schedule::in_id_order(&g);
        let r = simulate(&g, &s, &quiet_cfg(4));
        assert_eq!(r.failures, 0);
        assert_eq!(r.allocations, r.completions);
    }

    #[test]
    fn speed_factors_scale_per_client() {
        // One fast client (4x) vs one slow: on a chain, only the
        // allocation order decides who serves; with a single client at
        // speed 2, makespan halves.
        let g = from_arcs(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let s = Schedule::in_id_order(&g);
        let mut base = quiet_cfg(1);
        base.clients.num_clients = 1;
        let slow = simulate(&g, &s, &base);
        let mut fast_cfg = base.clone();
        fast_cfg.clients.speed_factors = Some(vec![2.0]);
        let fast = simulate(&g, &s, &fast_cfg);
        assert!((slow.makespan - 2.0 * fast.makespan).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "speed_factors must cover")]
    fn wrong_speed_factor_length_panics() {
        let g = diamond();
        let s = Schedule::in_id_order(&g);
        let mut cfg = quiet_cfg(1);
        cfg.clients.speed_factors = Some(vec![1.0]); // 2 clients expected
        let _ = simulate(&g, &s, &cfg);
    }

    #[test]
    fn comm_cost_lengthens_makespan() {
        let g = diamond();
        let s = Schedule::in_id_order(&g);
        let base = simulate(&g, &s, &quiet_cfg(2));
        let mut cfg = quiet_cfg(2);
        cfg.clients.comm_cost_per_arc = 0.5;
        let comm = simulate(&g, &s, &cfg);
        // Diamond: 4 arcs * 2 endpoints = 8 arc-endpoints charged along
        // the critical path; makespan strictly grows.
        assert!(comm.makespan > base.makespan);
        assert_eq!(comm.completions, 4);
    }

    #[test]
    fn task_weights_scale_service() {
        let g = from_arcs(2, &[]).unwrap(); // two independent tasks
        let s = Schedule::in_id_order(&g);
        let mut cfg = quiet_cfg(1);
        cfg.clients.num_clients = 1; // serial, deterministic
        cfg.task_weights = Some(vec![1.0, 3.0]);
        let r = simulate(&g, &s, &cfg);
        // Serial: 1 + 3 time units.
        assert!((r.makespan - 4.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "task_weights must cover")]
    fn wrong_weight_length_panics() {
        let g = diamond();
        let s = Schedule::in_id_order(&g);
        let mut cfg = quiet_cfg(1);
        cfg.task_weights = Some(vec![1.0]);
        let _ = simulate(&g, &s, &cfg);
    }

    #[test]
    fn all_policies_complete_on_random_dag() {
        let mut arcs = Vec::new();
        for u in 0..12u32 {
            for v in (u + 1)..12 {
                if (u * 31 + v * 17) % 5 == 0 {
                    arcs.push((u, v));
                }
            }
        }
        let g = from_arcs(12, &arcs).unwrap();
        for p in Policy::all(5) {
            let s = schedule_with(&g, &p);
            let r = simulate(&g, &s, &SimConfig::default());
            assert_eq!(r.completions, 12, "{}", p.name());
            // The same policy can also drive the server dynamically.
            let d = simulate(&g, &p, &SimConfig::default());
            assert_eq!(d.completions, 12, "dynamic {}", p.name());
        }
    }

    #[test]
    fn traced_run_metrics_match_trace_fold() {
        use crate::trace::MemorySink;
        let g = diamond();
        let s = Schedule::in_id_order(&g);
        let mut sink = MemorySink::new();
        let r = simulate_traced(&g, &s, &SimConfig::default(), &mut sink);
        let trace = sink.into_trace().expect("header recorded");
        assert_eq!(trace.header.nodes, 4);
        assert_eq!(trace.header.policy, "SCHEDULE");
        let refolded = SimResult::from_trace(&trace);
        assert_eq!(r, refolded, "metrics are a pure fold of the trace");
        assert_eq!(trace.completion_order().len(), 4);
    }

    #[test]
    fn traced_and_plain_runs_agree() {
        let g = diamond();
        let s = Schedule::in_id_order(&g);
        let plain = simulate(&g, &s, &SimConfig::default());
        let mut sink = crate::trace::MemorySink::new();
        let traced = simulate_traced(&g, &s, &SimConfig::default(), &mut sink);
        assert_eq!(plain, traced);
    }

    #[test]
    fn replay_policy_reproduces_a_run() {
        use crate::trace::{MemorySink, ReplayPolicy};
        let g = diamond();
        let s = Schedule::in_id_order(&g);
        let mut sink = MemorySink::new();
        let cfg = SimConfig::default();
        let original = simulate_traced(&g, &s, &cfg, &mut sink);
        let trace = sink.into_trace().unwrap();
        let replay = ReplayPolicy::from_trace(&trace);
        let replayed = simulate(&g, &replay, &cfg);
        assert_eq!(original.makespan, replayed.makespan);
        assert_eq!(original.completions, replayed.completions);
    }

    #[test]
    fn header_records_declared_worker_speeds() {
        use crate::trace::MemorySink;
        let g = diamond();
        let s = Schedule::in_id_order(&g);
        let mut cfg = quiet_cfg(5);
        cfg.clients.speed_factors = Some(vec![1.0, 2.5]);
        let mut sink = MemorySink::new();
        simulate_traced(&g, &s, &cfg, &mut sink);
        let trace = sink.into_trace().unwrap();
        assert_eq!(trace.header.workers.len(), 2);
        assert_eq!(trace.header.workers[1].speed, 2.5);
        assert_eq!(trace.header.workers[0].id, "client-0");
    }

    #[test]
    fn for_replay_reproduces_timing_from_the_header_alone() {
        use crate::trace::{MemorySink, ReplayPolicy};
        // Deterministic heterogeneous run: jitter off, speeds 1 and 3.
        let g = from_arcs(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]).unwrap();
        let s = Schedule::in_id_order(&g);
        let mut cfg = quiet_cfg(11);
        cfg.clients.speed_factors = Some(vec![1.0, 3.0]);
        let mut sink = MemorySink::new();
        let original = simulate_traced(&g, &s, &cfg, &mut sink);
        let trace = sink.into_trace().unwrap();

        // Rebuild the client population purely from the header.
        let mut replay_cfg = SimConfig::for_replay(&trace.header);
        replay_cfg.clients.jitter = 0.0;
        replay_cfg.clients.straggler_prob = 0.0;
        assert_eq!(replay_cfg.clients.speed_factors, Some(vec![1.0, 3.0]));
        let replayed = simulate(&g, &ReplayPolicy::from_trace(&trace), &replay_cfg);
        assert_eq!(original.makespan, replayed.makespan);
    }

    #[test]
    fn flaky_trace_replays_failure_free_without_divergence() {
        use crate::trace::{MemorySink, ReplayPolicy};
        // Record a run that loses tasks (40% failure rate) ...
        let g = diamond();
        let s = Schedule::in_id_order(&g);
        let mut cfg = quiet_cfg(9);
        cfg.clients.failure_prob = 0.4;
        let mut sink = MemorySink::new();
        let flaky = simulate_traced(&g, &s, &cfg, &mut sink);
        let trace = sink.into_trace().unwrap();
        assert!(flaky.failures > 0, "seed 9 at 40% should produce failures");
        // ... then replay its allocation order in a failure-free world:
        // the recorded re-allocations are skipped, not flagged.
        let clean_cfg = quiet_cfg(9);
        let replayed = simulate(&g, &ReplayPolicy::from_trace(&trace), &clean_cfg);
        assert_eq!(replayed.completions, 4);
        assert_eq!(replayed.failures, 0);
    }
}
